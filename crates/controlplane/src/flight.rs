//! Fleet-scale policy flighting (§7 wired into the control plane).
//!
//! A *flight* validates a candidate [`PlanePolicy`] against the control
//! policy before region-wide rollout. A deterministic cohort of tenants
//! is sampled by a pure splitmix hash keyed on the flight id + seed
//! (consistent with the auto-fraction assignment in
//! [`crate::fleet_driver`]); each cohort tenant's database is forked into
//! two B-instance clones — a control arm and a candidate arm — which
//! replay the same forked traffic trace while their own control planes
//! tune them under the respective policies. The §7.3 fixed-count Welch
//! comparison turns each tenant into an improved/regressed/wash verdict
//! (or discarded, when the divergence guard trips), and the verdicts
//! aggregate into a region-level ship/no-ship decision.
//!
//! Per-tenant execution runs inside the §7.2 workflow engine, so a
//! failed pipeline (e.g. excessive divergence) cleans up the clone forks
//! in reverse order and leaves zero debris. Flight state transitions are
//! journaled as [`crate::store::StateStore`] `Flight` frames: a crash
//! mid-flight recovers the completed verdicts, resumes the remainder,
//! and converges on the identical [`FlightReport`].
//!
//! Determinism contract (the headline claim, pinned by the
//! `flight_equivalence` proptests and the chaos suite): a flight's
//! cohort, per-tenant verdicts, and region verdict are byte-identical
//! across {serial, parallel} × {dense, sparse} × {plan cache on, off}
//! and across crash-after-every-write recovery. Everything a verdict
//! depends on is a pure function of `(config, tenant index, tenant)` —
//! thread interleaving, scheduling mode, and cache setting never enter.

use crate::fleet_driver::{index_hash01, SchedulingMode};
use crate::metrics::MetricsRegistry;
use crate::plane::{ControlPlane, ManagedDb, PlanePolicy};
use crate::region::DashboardSnapshot;
use crate::shard::ShardAssignment;
use crate::state::{DbSettings, ServerSettings};
use crate::store::StateStore;
use crate::telemetry::{EventKind, Telemetry};
use crossbeam::deque::Injector;
use experiment::analysis::{compare_costs, workload_cost_fixed_counts, CostSample};
use experiment::binstance::{create_b_instance, divergence_between};
use experiment::workflow::{FnStep, Workflow, WorkflowRun};
use sqlmini::clock::{Duration, Timestamp};
use sqlmini::engine::Database;
use sqlmini::querystore::Metric;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use workload::fleet::FleetSpec;
use workload::runner::{replay, ReplayFidelity, Trace};
use workload::{Tenant, WorkloadModel, WorkloadRunner};

/// Parked-forever sentinel for sparse arm scheduling.
const NEVER: u64 = u64::MAX;

/// Configuration of one policy flight.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Flight identifier — keys the cohort hash and the journal frames.
    pub id: String,
    /// Flight seed — keys the cohort hash, arm fork noise, and replay
    /// fidelity streams.
    pub seed: u64,
    /// Fraction of the fleet sampled into the cohort, in [0, 1].
    pub cohort_fraction: f64,
    /// The incumbent policy (the A arm).
    pub control: PlanePolicy,
    /// The policy under test (the B arm).
    pub candidate: PlanePolicy,
    /// Per-arm database settings.
    pub settings: DbSettings,
    /// Simulated time per tick.
    pub tick_interval: Duration,
    /// Ticks of untouched traffic before tuning starts — the §7.3 base
    /// window that pins the fixed execution counts.
    pub baseline_ticks: u32,
    /// Ticks of tuned traffic — the measurement window.
    pub measure_ticks: u32,
    /// Welch-test significance level for per-tenant verdicts.
    pub alpha: f64,
    /// Practical-significance margin as a fraction of the control cost.
    pub margin: f64,
    /// Divergence-guard tolerance: a tenant whose arm diverges from the
    /// traffic primary by more than this (max relative row count) is
    /// discarded, not measured.
    pub divergence_tolerance: f64,
    /// Replay infidelity: probability an event is dropped on replay.
    /// Identical (same seed) for both arms — there is one traffic fork.
    pub replay_drop_prob: f64,
    /// Dense vs sparse arm control scheduling (must not change verdicts).
    pub scheduling: SchedulingMode,
    /// Plan-cache setting for the arms (must not change verdicts).
    pub plan_cache: bool,
    /// Chaos knob: crash-recover the region store after every k journal
    /// writes while verdicts are journaled.
    pub crash_every_writes: Option<u64>,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig {
            id: "flight-0".to_string(),
            seed: 0,
            cohort_fraction: 0.5,
            control: PlanePolicy::default(),
            candidate: PlanePolicy::default(),
            settings: DbSettings::all_on(),
            tick_interval: Duration::from_hours(1),
            baseline_ticks: 6,
            measure_ticks: 18,
            alpha: 0.05,
            margin: 0.01,
            divergence_tolerance: 0.25,
            replay_drop_prob: 0.01,
            scheduling: SchedulingMode::Dense,
            plan_cache: true,
            crash_every_writes: None,
        }
    }
}

/// FNV-1a over bytes — folds the flight id into the cohort salt.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl FlightConfig {
    /// The salt for this flight's cohort stream: id + seed, independent
    /// of the auto-fraction stream's fixed salt.
    fn cohort_salt(&self) -> u64 {
        fnv1a64(self.id.as_bytes()) ^ self.seed.rotate_left(17)
    }

    /// Is fleet index `index` in this flight's cohort? A pure hash — no
    /// RNG state — so membership replays regardless of threading.
    pub fn in_cohort(&self, index: usize) -> bool {
        index_hash01(index, self.cohort_salt()) < self.cohort_fraction
    }

    /// The cohort over a fleet of `fleet_size` tenants, in fleet order.
    pub fn cohort(&self, fleet_size: usize) -> Vec<usize> {
        self.cohort_of(0..fleet_size)
    }

    /// Cohort membership over an arbitrary set of *global* indices —
    /// the sharded view, where each shard filters its own member list.
    /// Because membership hashes the global index (never the shard or
    /// the position within a shard), the union over any partition of
    /// the fleet equals the unsharded cohort exactly — resharding can
    /// never move a tenant in or out of a flight.
    pub fn cohort_of(&self, indices: impl IntoIterator<Item = usize>) -> Vec<usize> {
        indices.into_iter().filter(|&i| self.in_cohort(i)).collect()
    }

    fn total_ticks(&self) -> u32 {
        self.baseline_ticks + self.measure_ticks
    }

    /// Simulated time one tenant's arms are driven.
    pub fn sim_time(&self) -> Duration {
        Duration::from_millis(self.tick_interval.millis() * self.total_ticks() as u64)
    }
}

/// One cohort tenant's A/B outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TenantVerdict {
    /// The candidate arm was significantly and meaningfully cheaper.
    Improved,
    /// The candidate arm was significantly and meaningfully costlier.
    Regressed,
    /// No significant difference (or no comparable data).
    Wash,
    /// The divergence guard tripped; the tenant contributes no evidence.
    Discarded,
}

/// The journaled record of one tenant's verdict, plus the measurements
/// behind it. Values are clamped finite so the JSON journal framing
/// round-trips exactly.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantVerdictRecord {
    pub verdict: TenantVerdict,
    /// Fixed-count workload cost of the control arm's measurement window.
    pub control_cost: f64,
    /// Fixed-count workload cost of the candidate arm's window.
    pub candidate_cost: f64,
    /// One-sided p that the candidate arm is costlier (`None` when the
    /// comparison had no variance or the tenant was discarded).
    pub p_candidate_greater: Option<f64>,
    /// Max relative divergence of either arm vs the traffic primary.
    pub divergence: f64,
    /// Trace events replayed across both arms.
    pub replayed: u64,
    /// Simulated CPU microseconds spent replaying both arms.
    pub replay_cpu_us: u64,
}

/// Lifecycle of a flight, as journaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FlightState {
    Running,
    Shipped,
    Aborted,
}

/// The journaled state of one flight: cohort, per-tenant verdicts as
/// they land, and the terminal decision. This is what a
/// [`crate::store::StateStore`] `Flight` frame carries; recovery from
/// any journal prefix plus a resumed run converges on the same record.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlightRecord {
    pub id: String,
    pub seed: u64,
    pub state: FlightState,
    /// Cohort tenant indexes, in fleet order.
    pub cohort: Vec<usize>,
    /// Per-tenant verdicts keyed by fleet index.
    pub verdicts: BTreeMap<usize, TenantVerdictRecord>,
}

/// The region-level decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FlightDecision {
    Ship,
    Abort,
}

/// Per-tenant verdict from the two arms' cost samples: regressed when
/// the candidate is significantly costlier by more than `margin` of the
/// control cost, improved when significantly cheaper by the same margin,
/// wash otherwise (including incomparable samples). Returns the verdict
/// and the one-sided p that the candidate is costlier, when defined.
pub fn tenant_verdict(
    control: &CostSample,
    candidate: &CostSample,
    alpha: f64,
    margin: f64,
) -> (TenantVerdict, Option<f64>) {
    let Some(c) = compare_costs(control, candidate) else {
        return (TenantVerdict::Wash, None);
    };
    let abs_margin = margin * control.total;
    let verdict = if c.p_b_greater < alpha && (candidate.total - control.total) > abs_margin {
        TenantVerdict::Regressed
    } else if c.p_b_greater > 1.0 - alpha && (control.total - candidate.total) > abs_margin {
        TenantVerdict::Improved
    } else {
        TenantVerdict::Wash
    };
    (verdict, Some(c.p_b_greater))
}

/// The region-level ship/no-ship rule over per-tenant verdicts: ship
/// iff at least one tenant measurably improved and none regressed.
/// Washes are neutral; discarded tenants contribute no evidence.
pub fn region_decision<'a>(
    verdicts: impl IntoIterator<Item = &'a TenantVerdict>,
) -> FlightDecision {
    let mut improved = 0usize;
    let mut regressed = 0usize;
    for v in verdicts {
        match v {
            TenantVerdict::Improved => improved += 1,
            TenantVerdict::Regressed => regressed += 1,
            TenantVerdict::Wash | TenantVerdict::Discarded => {}
        }
    }
    if improved >= 1 && regressed == 0 {
        FlightDecision::Ship
    } else {
        FlightDecision::Abort
    }
}

/// End-of-flight state: the journaled record, the decision, verdict
/// tallies, and replay-cost accounting. Everything except `threads` and
/// `elapsed` is identical across {serial, parallel} × {dense, sparse} ×
/// {cache on, off} × {crash, no-crash} runs of the same flight.
#[derive(Debug)]
pub struct FlightReport {
    pub record: FlightRecord,
    pub decision: FlightDecision,
    pub improved: u64,
    pub regressed: u64,
    pub washed: u64,
    pub discarded: u64,
    /// Trace events replayed across all arms of all cohort tenants.
    pub replayed_events: u64,
    /// Simulated CPU microseconds spent on replay, fleet-wide.
    pub replay_cpu_us: u64,
    /// Flight telemetry (started / per-verdict / terminal events). Not
    /// canonical: a resumed run re-emits only the remaining verdicts.
    pub telemetry: Telemetry,
    /// Simulated time each tenant's arms were driven.
    pub sim_time: Duration,
    pub threads: usize,
    pub elapsed: std::time::Duration,
}

impl FlightReport {
    fn tally(record: &FlightRecord, verdict: TenantVerdict) -> u64 {
        record
            .verdicts
            .values()
            .filter(|v| v.verdict == verdict)
            .count() as u64
    }

    fn from_record(
        record: FlightRecord,
        telemetry: Telemetry,
        sim_time: Duration,
        threads: usize,
        elapsed: std::time::Duration,
    ) -> FlightReport {
        let decision = match record.state {
            FlightState::Shipped => FlightDecision::Ship,
            _ => FlightDecision::Abort,
        };
        let improved = FlightReport::tally(&record, TenantVerdict::Improved);
        let regressed = FlightReport::tally(&record, TenantVerdict::Regressed);
        let washed = FlightReport::tally(&record, TenantVerdict::Wash);
        let discarded = FlightReport::tally(&record, TenantVerdict::Discarded);
        let replayed_events = record.verdicts.values().map(|v| v.replayed).sum();
        let replay_cpu_us = record.verdicts.values().map(|v| v.replay_cpu_us).sum();
        FlightReport {
            record,
            decision,
            improved,
            regressed,
            washed,
            discarded,
            replayed_events,
            replay_cpu_us,
            telemetry,
            sim_time,
            threads,
            elapsed,
        }
    }

    /// Canonical serialization of the flight outcome: one JSON line per
    /// cohort tenant (in fleet order) plus the decision line. Serial,
    /// parallel, sparse, cache-off, and crash-swept runs of the same
    /// flight produce byte-identical output — the determinism contract
    /// the property and chaos tests pin down.
    pub fn canonical_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "flight {} seed {} cohort {:?}\n",
            self.record.id, self.record.seed, self.record.cohort
        ));
        for (index, v) in &self.record.verdicts {
            out.push_str(&format!(
                "{index}: {}\n",
                serde_json::to_string(v).expect("verdict serializes")
            ));
        }
        out.push_str(&format!(
            "decision:{:?} state:{:?} improved={} regressed={} wash={} discarded={} \
             replayed={} replay_cpu_us={}\n",
            self.decision,
            self.record.state,
            self.improved,
            self.regressed,
            self.washed,
            self.discarded,
            self.replayed_events,
            self.replay_cpu_us,
        ));
        out
    }

    /// The verdict as the dashboard renders it.
    pub fn verdict_label(&self) -> &'static str {
        match self.decision {
            FlightDecision::Ship => "ship",
            FlightDecision::Abort => "abort",
        }
    }

    /// Attach this flight's block to an existing §8.1 dashboard.
    pub fn annotate(&self, dash: DashboardSnapshot) -> DashboardSnapshot {
        dash.with_flight(
            self.record.cohort.len() as u64,
            self.improved,
            self.regressed,
            self.washed,
            self.discarded,
            self.verdict_label(),
        )
    }

    /// A standalone dashboard carrying only the flight block (the §8.1
    /// golden snapshots render this).
    pub fn dashboard(&self) -> DashboardSnapshot {
        self.annotate(DashboardSnapshot::from_metrics(
            &MetricsRegistry::new(),
            self.sim_time,
        ))
    }
}

/// One arm (control or candidate) of a tenant's flight: a B-instance
/// clone under its own control plane.
struct Arm {
    plane: ControlPlane,
    mdb: ManagedDb,
    next_wake: u64,
    replayed: u64,
    replay_cpu_us: f64,
}

/// The workflow context for one tenant's flight pipeline.
struct FlightCtx {
    primary: Database,
    model: WorkloadModel,
    runner: WorkloadRunner,
    t0: Timestamp,
    slices: Vec<Trace>,
    control: Option<Arm>,
    candidate: Option<Arm>,
    divergence: f64,
    samples: Option<(CostSample, CostSample)>,
    /// Forks torn down by reverse cleanup (the zero-debris assertion).
    cleaned_forks: usize,
}

/// The flight driver: samples the cohort, runs each cohort tenant's
/// two-arm pipeline, journals verdicts, and decides ship/no-ship.
#[derive(Debug, Clone, Default)]
pub struct FlightDriver {
    pub config: FlightConfig,
}

impl FlightDriver {
    pub fn new(config: FlightConfig) -> FlightDriver {
        FlightDriver { config }
    }

    /// Run the flight against `fleet` with a fresh (ephemeral) region
    /// store. The fleet is borrowed: flights operate on clones only.
    pub fn run(&self, fleet: &[Tenant], threads: usize) -> FlightReport {
        let mut store = StateStore::new();
        self.run_with_store(fleet, &mut store, threads)
    }

    /// Run the flight, journaling state transitions into `store`. If the
    /// store already holds this flight id, the run *resumes*: journaled
    /// verdicts are not recomputed, and a terminal record returns its
    /// report immediately — so crash recovery from any journal prefix
    /// followed by a resume converges on the same verdict.
    pub fn run_with_store(
        &self,
        fleet: &[Tenant],
        store: &mut StateStore,
        threads: usize,
    ) -> FlightReport {
        let start = std::time::Instant::now();
        let cfg = &self.config;
        let mut telemetry = Telemetry::new();
        let t_now = fleet
            .first()
            .map(|t| t.db.clock().now())
            .unwrap_or(Timestamp(0));

        let record = match store.flight(&cfg.id) {
            Some(r) => r.clone(),
            None => FlightRecord {
                id: cfg.id.clone(),
                seed: cfg.seed,
                state: FlightState::Running,
                cohort: cfg.cohort(fleet.len()),
                verdicts: BTreeMap::new(),
            },
        };
        if record.state != FlightState::Running {
            // Terminal: the journaled verdict stands.
            return FlightReport::from_record(
                record,
                telemetry,
                cfg.sim_time(),
                threads.max(1),
                start.elapsed(),
            );
        }
        telemetry.emit(
            EventKind::FlightStarted,
            &cfg.id,
            format!("cohort {} of {}", record.cohort.len(), fleet.len()),
            t_now,
        );
        store.record_flight(&record);

        // Compute the missing verdicts — each a pure function of
        // (config, index, tenant), so the pool may run them in any
        // thread interleaving without touching the outcome.
        let missing: Vec<usize> = record
            .cohort
            .iter()
            .copied()
            .filter(|i| !record.verdicts.contains_key(i))
            .collect();
        let computed: Vec<(usize, String, TenantVerdictRecord)> = self
            .flight_tenants(fleet, &missing, threads)
            .into_iter()
            .map(|(i, v)| (i, fleet[i].name.clone(), v))
            .collect();
        let record = self.journal_and_decide(record, computed, store, &mut telemetry, t_now);

        FlightReport::from_record(
            record,
            telemetry,
            cfg.sim_time(),
            threads.max(1),
            start.elapsed(),
        )
    }

    /// Run the flight over a lazily-hydratable fleet through a shard
    /// assignment — the sharded region's flight path. The cohort is
    /// computed from **global** tenant indices ([`FlightConfig::in_cohort`]
    /// hashes the index, never the shard), each shard worker computes
    /// verdicts for its own members, and the merged verdicts journal in
    /// global cohort order — so the journal sequence, the record, and
    /// the report are byte-identical to [`FlightDriver::run_with_store`]
    /// over the materialized fleet, for *any* shard count.
    pub fn run_sharded(
        &self,
        spec: &dyn FleetSpec,
        assignment: &ShardAssignment,
        store: &mut StateStore,
        threads: usize,
    ) -> FlightReport {
        let start = std::time::Instant::now();
        let cfg = &self.config;
        let mut telemetry = Telemetry::new();
        let t_now = if spec.is_empty() {
            Timestamp(0)
        } else {
            // The unsharded path reads the first tenant's clock; a
            // hydrated tenant is a pure function of its index, so this
            // is the same instant.
            spec.hydrate(0).db.clock().now()
        };

        let record = match store.flight(&cfg.id) {
            Some(r) => r.clone(),
            None => FlightRecord {
                id: cfg.id.clone(),
                seed: cfg.seed,
                state: FlightState::Running,
                cohort: cfg.cohort(spec.len()),
                verdicts: BTreeMap::new(),
            },
        };
        if record.state != FlightState::Running {
            return FlightReport::from_record(
                record,
                telemetry,
                cfg.sim_time(),
                threads.max(1),
                start.elapsed(),
            );
        }
        telemetry.emit(
            EventKind::FlightStarted,
            &cfg.id,
            format!("cohort {} of {}", record.cohort.len(), spec.len()),
            t_now,
        );
        store.record_flight(&record);

        let missing: Vec<usize> = record
            .cohort
            .iter()
            .copied()
            .filter(|i| !record.verdicts.contains_key(i))
            .collect();
        // Shard dispatch: each shard computes its members' verdicts
        // (pure per tenant); the merge re-sorts by global index, which
        // reproduces the unsharded journal order exactly.
        let mut computed: Vec<(usize, String, TenantVerdictRecord)> =
            Vec::with_capacity(missing.len());
        for shard in 0..assignment.shards() {
            let members: Vec<usize> = missing
                .iter()
                .copied()
                .filter(|&i| assignment.shard_of(i) == shard)
                .collect();
            computed.extend(self.flight_tenants_spec(spec, &members, threads));
        }
        computed.sort_unstable_by_key(|&(i, _, _)| i);
        let record = self.journal_and_decide(record, computed, store, &mut telemetry, t_now);

        FlightReport::from_record(
            record,
            telemetry,
            cfg.sim_time(),
            threads.max(1),
            start.elapsed(),
        )
    }

    /// The shared tail of every flight run: journal the computed
    /// verdicts sequentially in the order given (global cohort order),
    /// with the chaos crash-sweep knob applied at write boundaries,
    /// then journal the region-level decision.
    fn journal_and_decide(
        &self,
        mut record: FlightRecord,
        computed: Vec<(usize, String, TenantVerdictRecord)>,
        store: &mut StateStore,
        telemetry: &mut Telemetry,
        t_now: Timestamp,
    ) -> FlightRecord {
        let cfg = &self.config;
        let mut writes_at_last_crash = store.journal_writes();
        for (index, name, verdict) in computed {
            telemetry.emit(
                EventKind::FlightTenantVerdict,
                &name,
                format!("{:?}", verdict.verdict),
                t_now,
            );
            record.verdicts.insert(index, verdict);
            store.record_flight(&record);
            if let Some(k) = cfg.crash_every_writes {
                if store.journal_writes() >= writes_at_last_crash.saturating_add(k.max(1)) {
                    store.crash_and_recover();
                    writes_at_last_crash = store.journal_writes();
                    // The journal is the source of truth; what it
                    // recovered must be what we think we wrote.
                    record = store
                        .flight(&cfg.id)
                        .expect("recovered store retains the active flight")
                        .clone();
                }
            }
        }

        // Region decision: auto-promote or auto-abort, journaled.
        let decision = region_decision(record.verdicts.values().map(|v| &v.verdict));
        record.state = match decision {
            FlightDecision::Ship => FlightState::Shipped,
            FlightDecision::Abort => FlightState::Aborted,
        };
        store.record_flight(&record);
        let (kind, label) = match decision {
            FlightDecision::Ship => (EventKind::FlightShipped, "ship"),
            FlightDecision::Abort => (EventKind::FlightAborted, "abort"),
        };
        telemetry.emit(kind, &cfg.id, label, t_now);
        record
    }

    /// Run the per-tenant pipelines for `missing` (fleet indexes),
    /// returning `(index, verdict)` in `missing` order. With `threads >
    /// 1` the pipelines run on a work-stealing-free atomic queue into
    /// per-item slots — order of completion never matters because each
    /// verdict is a pure function of its own tenant.
    fn flight_tenants(
        &self,
        fleet: &[Tenant],
        missing: &[usize],
        threads: usize,
    ) -> Vec<(usize, TenantVerdictRecord)> {
        if threads <= 1 || missing.len() <= 1 {
            return missing
                .iter()
                .map(|&i| (i, self.flight_tenant(i, &fleet[i])))
                .collect();
        }
        // `Tenant` is Send but not Sync (interior clock cells), so each
        // task owns a clone; the slot index pins deterministic order.
        let injector: Injector<(usize, usize, Tenant)> = Injector::new();
        for (k, &i) in missing.iter().enumerate() {
            injector.push((k, i, fleet[i].clone()));
        }
        let slots: Vec<Mutex<Option<TenantVerdictRecord>>> =
            missing.iter().map(|_| Mutex::new(None)).collect();
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(missing.len()) {
                let injector = &injector;
                let slots = &slots;
                scope.spawn(move || {
                    while let Some((k, index, tenant)) = injector.steal().success() {
                        let verdict = self.flight_tenant(index, &tenant);
                        *slots[k].lock().unwrap() = Some(verdict);
                    }
                });
            }
        });
        missing
            .iter()
            .zip(slots)
            .map(|(&i, slot)| (i, slot.into_inner().unwrap().expect("slot filled")))
            .collect()
    }

    /// Spec-hydrating variant of [`FlightDriver::flight_tenants`] for
    /// the sharded path: hydrate each missing cohort member from the
    /// fleet spec, run its pipeline, and return
    /// `(index, name, verdict)` in `missing` order. Hydration happens
    /// inside the worker, so at most `threads` cohort tenants are
    /// resident at once.
    fn flight_tenants_spec(
        &self,
        spec: &dyn FleetSpec,
        missing: &[usize],
        threads: usize,
    ) -> Vec<(usize, String, TenantVerdictRecord)> {
        if threads <= 1 || missing.len() <= 1 {
            return missing
                .iter()
                .map(|&i| {
                    let tenant = spec.hydrate(i);
                    let verdict = self.flight_tenant(i, &tenant);
                    (i, tenant.name, verdict)
                })
                .collect();
        }
        let slots: Vec<Mutex<Option<(String, TenantVerdictRecord)>>> =
            missing.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(missing.len()) {
                let slots = &slots;
                let next = &next;
                scope.spawn(move || loop {
                    let k = next.fetch_add(1, Ordering::SeqCst);
                    if k >= missing.len() {
                        break;
                    }
                    let tenant = spec.hydrate(missing[k]);
                    let verdict = self.flight_tenant(missing[k], &tenant);
                    *slots[k].lock().unwrap() = Some((tenant.name, verdict));
                });
            }
        });
        missing
            .iter()
            .zip(slots)
            .map(|(&i, slot)| {
                let (name, verdict) = slot.into_inner().unwrap().expect("slot filled");
                (i, name, verdict)
            })
            .collect()
    }

    /// Deterministic per-(tenant, arm) fork noise seed.
    fn arm_seed(&self, index: usize, arm: u64) -> u64 {
        self.config.seed
            ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ arm.wrapping_mul(0x0F1E_2D3C_4B5A_6978)
    }

    /// One cohort tenant's full §7 pipeline, as a workflow with
    /// guaranteed reverse-order cleanup: fork the two arms, fork the
    /// traffic, interleave replay with per-arm control passes, check the
    /// divergence guard, measure. A guard trip fails the workflow — the
    /// completed steps clean up in reverse and the tenant is discarded.
    fn flight_tenant(&self, index: usize, tenant: &Tenant) -> TenantVerdictRecord {
        let cfg = &self.config;
        // The traffic primary: a clone of the tenant on its own clock.
        // The flight never touches the real tenant.
        let mut primary = tenant.db.clone();
        primary.detach_clock();
        primary.config.plan_cache = cfg.plan_cache;
        let t0 = primary.clock().now();
        let mut ctx = FlightCtx {
            primary,
            model: tenant.model.clone(),
            runner: tenant.runner.clone(),
            t0,
            slices: Vec::new(),
            control: None,
            candidate: None,
            divergence: 0.0,
            samples: None,
            cleaned_forks: 0,
        };

        let run = self.tenant_workflow(index).execute(&mut ctx);
        self.verdict_from_ctx(&ctx, &run)
    }

    /// Build the per-tenant workflow. Split out so tests can drive it
    /// directly and assert on step statuses.
    fn tenant_workflow(&self, index: usize) -> Workflow<FlightCtx> {
        let cfg = self.config.clone();
        let total_ticks = cfg.total_ticks();
        let interval = cfg.tick_interval;
        let sparse = cfg.scheduling == SchedulingMode::Sparse;
        let fidelity_seed =
            cfg.seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x0046_4C49;

        let make_arm = |policy: PlanePolicy, seed: u64, plan_cache: bool, settings: DbSettings| {
            move |ctx: &mut FlightCtx| {
                let b = create_b_instance(&ctx.primary, seed);
                let mut db = b.db;
                // Forks share the primary's clock; each arm owns its
                // own time stream.
                db.detach_clock();
                db.config.plan_cache = plan_cache;
                let mdb = ManagedDb::new(db, settings, ServerSettings::default());
                Ok::<Arm, String>(Arm {
                    plane: ControlPlane::new(policy.clone()),
                    mdb,
                    next_wake: 0,
                    replayed: 0,
                    replay_cpu_us: 0.0,
                })
            }
        };
        let fork_control = make_arm(
            cfg.control.clone(),
            self.arm_seed(index, 0xA),
            cfg.plan_cache,
            cfg.settings,
        );
        let fork_candidate = make_arm(
            cfg.candidate.clone(),
            self.arm_seed(index, 0xB),
            cfg.plan_cache,
            cfg.settings,
        );
        let baseline_ticks = cfg.baseline_ticks;
        let tolerance = cfg.divergence_tolerance;
        let drop_prob = cfg.replay_drop_prob;

        Workflow::new(format!("{}::tenant{index}", cfg.id))
            .step(
                FnStep::new("fork-control", move |ctx: &mut FlightCtx| {
                    ctx.control = Some(fork_control(ctx)?);
                    Ok(())
                })
                .with_cleanup(|ctx: &mut FlightCtx| {
                    // Drop the clone — B-instances are disposable.
                    ctx.control = None;
                    ctx.cleaned_forks += 1;
                }),
            )
            .step(
                FnStep::new("fork-candidate", move |ctx: &mut FlightCtx| {
                    ctx.candidate = Some(fork_candidate(ctx)?);
                    Ok(())
                })
                .with_cleanup(|ctx: &mut FlightCtx| {
                    ctx.candidate = None;
                    ctx.cleaned_forks += 1;
                }),
            )
            .step(FnStep::new("fork-traffic", move |ctx: &mut FlightCtx| {
                // One traced run on the primary is the traffic fork both
                // arms replay; slice it into per-tick sub-traces.
                let dur = Duration::from_millis(interval.millis() * total_ticks as u64);
                let mut runner = ctx.runner.clone();
                let model = ctx.model.clone();
                let (_, trace) = runner.run_traced(&mut ctx.primary, &model, dur);
                let mut slices: Vec<Trace> = (0..total_ticks)
                    .map(|_| Trace { events: Vec::new() })
                    .collect();
                for e in trace.events {
                    let k = (e.at.0.saturating_sub(ctx.t0.0)) / interval.millis().max(1);
                    let k = (k as usize).min(total_ticks.saturating_sub(1) as usize);
                    slices[k].events.push(e);
                }
                ctx.slices = slices;
                Ok(())
            }))
            .step(FnStep::new("replay", move |ctx: &mut FlightCtx| {
                let t0 = ctx.t0;
                let slices = std::mem::take(&mut ctx.slices);
                let model = ctx.model.clone();
                for (k, slice) in slices.iter().enumerate() {
                    let fidelity = ReplayFidelity {
                        drop_prob,
                        reorder_window: 4,
                        seed: fidelity_seed ^ (k as u64) << 8,
                    };
                    let tick_end = Timestamp(t0.0 + interval.millis() * (k as u64 + 1));
                    for arm in [ctx.control.as_mut(), ctx.candidate.as_mut()] {
                        let arm = arm.ok_or("arm missing")?;
                        let s = replay(&mut arm.mdb.db, &model, slice, fidelity);
                        arm.replayed += s.replayed;
                        arm.replay_cpu_us += s.total_cpu_us;
                        arm.mdb.db.clock().advance_to(tick_end);
                        // Tuning starts after the baseline window; the
                        // sparse schedule gates passes after that, and
                        // must be unobservable (a skipped pass is
                        // provably a no-op).
                        let due = k as u64 >= baseline_ticks as u64
                            && (!sparse || k as u64 >= arm.next_wake);
                        if due {
                            let schedule = arm.plane.tick(&mut arm.mdb);
                            arm.next_wake = schedule
                                .next_wake_tick(arm.mdb.db.clock().now(), k as u64, interval)
                                .unwrap_or(NEVER);
                        }
                    }
                }
                Ok(())
            }))
            .step(FnStep::new(
                "divergence-guard",
                move |ctx: &mut FlightCtx| {
                    let mut worst = 0.0f64;
                    for arm in [ctx.control.as_ref(), ctx.candidate.as_ref()] {
                        let arm = arm.ok_or("arm missing")?;
                        let d = divergence_between(&ctx.primary, &arm.mdb.db);
                        worst = worst.max(d.max_relative());
                    }
                    // Clamp finite so the JSON journal framing
                    // round-trips (infinity has no JSON encoding).
                    ctx.divergence = worst.min(f64::MAX);
                    if worst > tolerance {
                        Err(format!(
                            "divergence {worst:.4} exceeds tolerance {tolerance:.4}"
                        ))
                    } else {
                        Ok(())
                    }
                },
            ))
            .step(FnStep::new("measure", move |ctx: &mut FlightCtx| {
                let base = (
                    ctx.t0,
                    Timestamp(ctx.t0.0 + interval.millis() * baseline_ticks as u64),
                );
                let window = (
                    base.1,
                    Timestamp(ctx.t0.0 + interval.millis() * total_ticks as u64),
                );
                let sample = |arm: Option<&Arm>| {
                    arm.map(|a| {
                        workload_cost_fixed_counts(&a.mdb.db, Metric::CpuTime, base, window)
                    })
                    .ok_or("arm missing")
                };
                let control = sample(ctx.control.as_ref())?;
                let candidate = sample(ctx.candidate.as_ref())?;
                ctx.samples = Some((control, candidate));
                Ok(())
            }))
    }

    /// Fold the executed workflow into the journaled verdict record.
    fn verdict_from_ctx(&self, ctx: &FlightCtx, run: &WorkflowRun) -> TenantVerdictRecord {
        let cfg = &self.config;
        let (replayed, replay_cpu) = [ctx.control.as_ref(), ctx.candidate.as_ref()]
            .into_iter()
            .flatten()
            .fold((0u64, 0.0f64), |(n, us), a| {
                (n + a.replayed, us + a.replay_cpu_us)
            });
        let replay_cpu_us = replay_cpu.round() as u64;
        if let (true, Some((control, candidate))) = (run.succeeded(), ctx.samples.as_ref()) {
            let (verdict, p) = tenant_verdict(control, candidate, cfg.alpha, cfg.margin);
            TenantVerdictRecord {
                verdict,
                control_cost: control.total,
                candidate_cost: candidate.total,
                p_candidate_greater: p,
                divergence: ctx.divergence,
                replayed,
                replay_cpu_us,
            }
        } else {
            // Guard trip (or pipeline failure): the forks were cleaned
            // up in reverse order; the tenant contributes no evidence.
            TenantVerdictRecord {
                verdict: TenantVerdict::Discarded,
                control_cost: 0.0,
                candidate_cost: 0.0,
                p_candidate_greater: None,
                divergence: ctx.divergence,
                replayed: 0,
                replay_cpu_us: 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use experiment::workflow::StepStatus;
    use sqlmini::engine::ServiceTier;
    use workload::{generate_tenant, TenantConfig};

    fn small_fleet(n: usize, seed: u64) -> Vec<Tenant> {
        (0..n)
            .map(|i| {
                let s = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(i as u64 + 1);
                let mut cfg = TenantConfig::new(format!("fl{i}"), s, ServiceTier::Basic);
                cfg.schema.min_tables = 1;
                cfg.schema.max_tables = 2;
                cfg.schema.min_rows = 1_000;
                cfg.schema.max_rows = 3_000;
                cfg.workload.base_rate_per_hour = 120.0;
                generate_tenant(&cfg)
            })
            .collect()
    }

    fn quick_config() -> FlightConfig {
        FlightConfig {
            cohort_fraction: 0.6,
            baseline_ticks: 3,
            measure_ticks: 6,
            ..FlightConfig::default()
        }
    }

    #[test]
    fn cohort_is_deterministic_and_salted() {
        let a = FlightConfig {
            id: "fl-a".into(),
            seed: 7,
            cohort_fraction: 0.5,
            ..FlightConfig::default()
        };
        assert_eq!(a.cohort(64), a.cohort(64));
        // A prefix of the fleet keeps its membership under growth.
        let big = a.cohort(128);
        let small = a.cohort(64);
        assert_eq!(
            small,
            big.iter().copied().filter(|&i| i < 64).collect::<Vec<_>>()
        );
        // Different flight id or seed re-rolls the cohort.
        let b = FlightConfig {
            id: "fl-b".into(),
            ..a.clone()
        };
        let c = FlightConfig { seed: 8, ..a };
        assert_ne!(b.cohort(64), c.cohort(64));
    }

    #[test]
    fn cohort_fraction_bounds() {
        let none = FlightConfig {
            cohort_fraction: 0.0,
            ..FlightConfig::default()
        };
        assert!(none.cohort(100).is_empty());
        let all = FlightConfig {
            cohort_fraction: 1.0,
            ..FlightConfig::default()
        };
        assert_eq!(all.cohort(100).len(), 100);
    }

    #[test]
    fn identical_policies_never_ship() {
        // Control == candidate: every tenant is a wash (same policy,
        // same traffic, same noise seeds per arm differ — but verdicts
        // need significance + margin), so the flight must abort rather
        // than promote noise.
        let fleet = small_fleet(4, 11);
        let driver = FlightDriver::new(quick_config());
        let report = driver.run(&fleet, 1);
        assert_eq!(report.improved, 0, "{}", report.canonical_string());
        assert_eq!(report.decision, FlightDecision::Abort);
        assert_eq!(report.record.state, FlightState::Aborted);
    }

    #[test]
    fn flight_leaves_primary_untouched() {
        let fleet = small_fleet(3, 5);
        let before: Vec<(Timestamp, usize)> = fleet
            .iter()
            .map(|t| (t.db.clock().now(), t.db.catalog().n_indexes()))
            .collect();
        let driver = FlightDriver::new(quick_config());
        let _ = driver.run(&fleet, 2);
        let after: Vec<(Timestamp, usize)> = fleet
            .iter()
            .map(|t| (t.db.clock().now(), t.db.catalog().n_indexes()))
            .collect();
        assert_eq!(before, after, "flights must only ever touch clones");
    }

    #[test]
    fn divergence_guard_discards_and_cleans_up_in_reverse() {
        let fleet = small_fleet(1, 3);
        let cfg = FlightConfig {
            cohort_fraction: 1.0,
            replay_drop_prob: 0.95,
            divergence_tolerance: 0.05,
            baseline_ticks: 2,
            measure_ticks: 4,
            ..FlightConfig::default()
        };
        let driver = FlightDriver::new(cfg);
        // Drive the workflow directly to inspect step statuses.
        let tenant = &fleet[0];
        let mut primary = tenant.db.clone();
        primary.detach_clock();
        let t0 = primary.clock().now();
        let mut ctx = FlightCtx {
            primary,
            model: tenant.model.clone(),
            runner: tenant.runner.clone(),
            t0,
            slices: Vec::new(),
            control: None,
            candidate: None,
            divergence: 0.0,
            samples: None,
            cleaned_forks: 0,
        };
        let run = driver.tenant_workflow(0).execute(&mut ctx);
        assert!(!run.succeeded(), "95% drops must trip the guard");
        let status = |name: &str| {
            run.statuses
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.clone())
                .unwrap()
        };
        assert!(matches!(status("divergence-guard"), StepStatus::Failed(_)));
        assert_eq!(status("fork-control"), StepStatus::CleanedUp);
        assert_eq!(status("fork-candidate"), StepStatus::CleanedUp);
        assert_eq!(status("measure"), StepStatus::Pending);
        assert!(ctx.control.is_none() && ctx.candidate.is_none());
        assert_eq!(ctx.cleaned_forks, 2, "both forks torn down");
        let verdict = driver.verdict_from_ctx(&ctx, &run);
        assert_eq!(verdict.verdict, TenantVerdict::Discarded);

        // End-to-end: the discarded tenant yields no evidence → abort.
        let report = driver.run(&fleet, 1);
        assert_eq!(report.discarded, 1);
        assert_eq!(report.decision, FlightDecision::Abort);
        assert!(report.telemetry.count(EventKind::FlightAborted) == 1);
    }

    #[test]
    fn verdict_rules_hand_checked() {
        let s = |total: f64, var: f64| CostSample {
            total,
            variance: var,
            df: 30.0,
            queries: 5,
        };
        // Candidate much cheaper: improved.
        let (v, p) = tenant_verdict(&s(1000.0, 100.0), &s(800.0, 100.0), 0.05, 0.05);
        assert_eq!(v, TenantVerdict::Improved);
        assert!(p.unwrap() > 0.95);
        // Candidate much costlier: regressed.
        let (v, p) = tenant_verdict(&s(800.0, 100.0), &s(1000.0, 100.0), 0.05, 0.05);
        assert_eq!(v, TenantVerdict::Regressed);
        assert!(p.unwrap() < 0.05);
        // Significant but below the practical margin: wash.
        let (v, _) = tenant_verdict(&s(1000.0, 1.0), &s(990.0, 1.0), 0.05, 0.05);
        assert_eq!(v, TenantVerdict::Wash);
        // Incomparable (zero variance): wash, no p.
        let (v, p) = tenant_verdict(&s(1000.0, 0.0), &s(500.0, 0.0), 0.05, 0.05);
        assert_eq!(v, TenantVerdict::Wash);
        assert!(p.is_none());
    }

    #[test]
    fn region_rule_ship_iff_improvement_and_no_regression() {
        use TenantVerdict::*;
        let d = |vs: &[TenantVerdict]| region_decision(vs.iter());
        assert_eq!(d(&[Improved]), FlightDecision::Ship);
        assert_eq!(d(&[Improved, Wash, Discarded]), FlightDecision::Ship);
        assert_eq!(d(&[Improved, Regressed]), FlightDecision::Abort);
        assert_eq!(d(&[Wash, Wash]), FlightDecision::Abort);
        assert_eq!(d(&[]), FlightDecision::Abort);
        assert_eq!(d(&[Regressed]), FlightDecision::Abort);
    }

    #[test]
    fn resume_skips_journaled_verdicts_and_terminal_flights_return() {
        let fleet = small_fleet(4, 21);
        let driver = FlightDriver::new(quick_config());
        let mut store = StateStore::new();
        let first = driver.run_with_store(&fleet, &mut store, 1);
        let writes_after = store.journal_writes();
        // Terminal record: a resumed run must not recompute or journal.
        let second = driver.run_with_store(&fleet, &mut store, 1);
        assert_eq!(first.canonical_string(), second.canonical_string());
        assert_eq!(store.journal_writes(), writes_after);
        assert_eq!(second.telemetry.count(EventKind::FlightStarted), 0);
    }

    #[test]
    fn crash_recovery_preserves_flight_frames() {
        let fleet = small_fleet(3, 9);
        let driver = FlightDriver::new(quick_config());
        let mut store = StateStore::new();
        let report = driver.run_with_store(&fleet, &mut store, 1);
        let before = store.flight(&driver.config.id).cloned();
        store.crash_and_recover();
        assert_eq!(store.flight(&driver.config.id).cloned(), before);
        let resumed = driver.run_with_store(&fleet, &mut store, 1);
        assert_eq!(report.canonical_string(), resumed.canonical_string());
    }

    #[test]
    fn dashboard_flight_block_renders() {
        let fleet = small_fleet(3, 13);
        let driver = FlightDriver::new(quick_config());
        let report = driver.run(&fleet, 1);
        let dash = report.dashboard();
        let rendered = dash.render();
        assert!(rendered.contains("flight (\u{a7}7 policy A/B)"));
        assert!(rendered.contains("cohort tenants"));
        assert!(rendered.contains(report.verdict_label()));
        // Round-trips through the snapshot's serde surface.
        let json = serde_json::to_string(&dash).unwrap();
        let back: DashboardSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dash);
    }
}
