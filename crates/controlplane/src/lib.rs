//! `controlplane` — the fault-tolerant orchestration backbone (§4).
//!
//! A per-region control plane drives the auto-indexing lifecycle of every
//! managed database: it invokes the recommenders, implements
//! recommendations when the user's settings permit, validates them with
//! the statistical validator, auto-reverts regressions, retries transient
//! failures, expires stale recommendations, and raises incidents for
//! conditions needing a human. State lives in a journaled store that
//! survives crashes; health flows through anonymized telemetry.

pub mod api;
pub mod coordinator;
pub mod faults;
pub mod fleet_driver;
pub mod flight;
pub mod lock_protocol;
pub mod metrics;
pub mod plane;
pub mod region;
pub mod scheduler;
pub mod shard;
pub mod stages;
pub mod state;
pub mod store;
pub mod telemetry;
pub mod trace;
pub mod wakeup;

pub use api::{ManagementApi, RegionFront};
pub use coordinator::{
    RegionConfig, RegionCoordinator, RegionReport, ShardConcurrency, ShardSummary,
};
pub use faults::{FaultInjector, FaultKind, FaultPoint};
pub use fleet_driver::{
    canonical_line, counters_line, index_hash01, index_hash_bits, FleetDriver, FleetDriverConfig,
    FleetReport, SchedulingMode, TenantOutcome, TenantScript, TenantStatus,
};
pub use flight::{
    region_decision, tenant_verdict, FlightConfig, FlightDecision, FlightDriver, FlightRecord,
    FlightReport, FlightState, TenantVerdict, TenantVerdictRecord,
};
pub use metrics::{Histogram, MetricsRegistry};
pub use plane::{ControlPlane, ManagedDb, PlanePolicy, RecommenderPolicy, RetryPolicy};
pub use region::{DashboardSnapshot, GlobalDashboard, Region};
pub use shard::{
    HydrationGauge, HydrationMode, ShardAssignment, ShardCommand, ShardDriver, ShardReport,
    ASSIGNMENT_SLOTS,
};
pub use stages::{NextDue, Stage, WakeSchedule};
pub use state::{DbSettings, RecoId, RecoState, ServerSettings, Setting, TrackedReco};
pub use store::{CheckpointStats, CompactionPolicy, RecoveryReport, StateStore};
pub use telemetry::{EventKind, Telemetry};
pub use trace::{Span, Tracer};
pub use wakeup::WakeupHeap;
