//! Low-activity scheduling (§6: "scheduling most of the operations during
//! periods of low activity for the database").
//!
//! The control plane has no application knowledge; it infers the
//! database's activity profile from Query Store: resource consumption per
//! hour-of-day over the trailing day(s). Resource-intensive actions (index
//! builds) are deferred to hours whose historical activity is below a
//! fraction of the peak.

use sqlmini::clock::{Duration, Timestamp};
use sqlmini::engine::Database;
use sqlmini::querystore::Metric;

/// Scheduling policy.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SchedulerConfig {
    /// How much history to profile.
    pub lookback: Duration,
    /// An hour is "low activity" when its historical consumption is below
    /// this fraction of the peak hour.
    pub low_fraction: f64,
    /// Without enough history, default to permitting the action.
    pub min_history_hours: u64,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            lookback: Duration::from_days(2),
            low_fraction: 0.5,
            min_history_hours: 12,
        }
    }
}

/// Hour-of-day activity profile (24 buckets of CPU consumption).
pub fn activity_profile(db: &Database, cfg: &SchedulerConfig, now: Timestamp) -> [f64; 24] {
    let qs = db.query_store();
    let from = Timestamp(now.millis().saturating_sub(cfg.lookback.millis()));
    let mut buckets = [0.0f64; 24];
    // Walk hour-wide windows.
    let hour = Duration::from_hours(1);
    let mut t = from;
    while t < now {
        let end = (t + hour).min(now);
        let consumed = qs.total_resources(Metric::CpuTime, t, end);
        let hod = ((t.millis() / hour.millis()) % 24) as usize;
        buckets[hod] += consumed;
        t = end;
    }
    buckets
}

/// Whether `now` falls in a low-activity hour.
pub fn is_low_activity(db: &Database, cfg: &SchedulerConfig, now: Timestamp) -> bool {
    let profile = activity_profile(db, cfg, now);
    let peak = profile.iter().cloned().fold(0.0f64, f64::max);
    let with_history = profile.iter().filter(|&&v| v > 0.0).count() as u64;
    if peak <= 0.0 || with_history < cfg.min_history_hours.min(24) {
        return true; // no data: don't block actions forever
    }
    let hod = ((now.millis() / 3_600_000) % 24) as usize;
    profile[hod] <= cfg.low_fraction * peak
}

/// The next time at or after `now` that falls in a low-activity hour
/// (bounded search over the next 48 hours; falls back to `now`).
pub fn next_low_activity_window(db: &Database, cfg: &SchedulerConfig, now: Timestamp) -> Timestamp {
    let profile = activity_profile(db, cfg, now);
    let peak = profile.iter().cloned().fold(0.0f64, f64::max);
    if peak <= 0.0 {
        return now;
    }
    for h in 0..48u64 {
        let t = Timestamp(((now.millis() / 3_600_000) + h) * 3_600_000);
        let hod = ((t.millis() / 3_600_000) % 24) as usize;
        if profile[hod] <= cfg.low_fraction * peak {
            return t.max(now);
        }
    }
    now
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlmini::clock::SimClock;
    use sqlmini::engine::DbConfig;
    use sqlmini::query::{CmpOp, Predicate, QueryTemplate, SelectQuery, Statement};
    use sqlmini::schema::{ColumnDef, ColumnId, TableDef};
    use sqlmini::types::{Value, ValueType};

    /// A database whose workload runs only during "business hours"
    /// (hours 8..20 of each day).
    fn diurnal_db() -> Database {
        let mut db = Database::new("s", DbConfig::default(), SimClock::new());
        let t = db
            .create_table(TableDef::new(
                "t",
                vec![
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("x", ValueType::Int),
                ],
            ))
            .unwrap();
        db.load_rows(
            t,
            (0..2000i64).map(|i| vec![Value::Int(i), Value::Int(i % 10)]),
        );
        db.rebuild_stats(t);
        let mut q = SelectQuery::new(t);
        q.predicates = vec![Predicate::param(ColumnId(1), CmpOp::Eq, 0)];
        q.projection = vec![ColumnId(0)];
        let tpl = QueryTemplate::new(Statement::Select(q), 1);
        // Two full days of history.
        for hour in 0..48u64 {
            let hod = hour % 24;
            if (8..20).contains(&hod) {
                for i in 0..20 {
                    db.execute(&tpl, &[Value::Int(i)]).unwrap();
                }
            }
            db.clock().advance(Duration::from_hours(1));
        }
        db
    }

    #[test]
    fn profile_shows_business_hours() {
        let db = diurnal_db();
        let profile = activity_profile(&db, &SchedulerConfig::default(), db.clock().now());
        assert!(profile[12] > 0.0);
        assert_eq!(profile[3], 0.0);
    }

    #[test]
    fn night_is_low_activity_day_is_not() {
        let db = diurnal_db();
        let cfg = SchedulerConfig {
            min_history_hours: 6,
            ..SchedulerConfig::default()
        };
        // Now = hour 48 => hod 0 (night).
        assert!(is_low_activity(&db, &cfg, db.clock().now()));
        // Mid-day.
        let noon = Timestamp(db.clock().now().millis() + Duration::from_hours(12).millis());
        assert!(!is_low_activity(&db, &cfg, noon));
    }

    #[test]
    fn next_window_skips_business_hours() {
        let db = diurnal_db();
        let cfg = SchedulerConfig {
            min_history_hours: 6,
            ..SchedulerConfig::default()
        };
        // From noon, the next low window is at hour >= 20.
        let noon = Timestamp(db.clock().now().millis() + Duration::from_hours(12).millis());
        let w = next_low_activity_window(&db, &cfg, noon);
        let hod = (w.millis() / 3_600_000) % 24;
        assert!(!(8..20).contains(&hod), "window at hod {hod}");
        assert!(w >= noon);
    }

    #[test]
    fn no_history_permits_everything() {
        let db = Database::new("empty", DbConfig::default(), SimClock::new());
        assert!(is_low_activity(
            &db,
            &SchedulerConfig::default(),
            Timestamp(0)
        ));
        assert_eq!(
            next_low_activity_window(&db, &SchedulerConfig::default(), Timestamp(123)),
            Timestamp(123)
        );
    }
}
