//! The control plane proper: the micro-services of §4, driving each
//! managed database's auto-indexing lifecycle.
//!
//! The four micro-services the paper enumerates are the four phases of
//! [`ControlPlane::tick`]:
//!
//! 1. **Analysis** — invoke the recommender (MI or DTA per the tier
//!    policy) plus the drop analyzer, and register new recommendations;
//! 2. **Implementation** — apply Active recommendations when the user's
//!    settings allow, preferring low-activity windows, with fault-aware
//!    retry;
//! 3. **Validation** — once enough post-change statistics accumulated,
//!    run the statistical validator and either confirm (Success) or
//!    auto-revert (Reverting → Reverted); validation outcomes also train
//!    the MI classifier online;
//! 4. **Health** — detect stuck recommendations and raise incidents,
//!    taking automated corrective action where safe.

use crate::faults::{FaultInjector, FaultKind, FaultPoint};
use crate::metrics::MetricsRegistry;
use crate::scheduler::{is_low_activity, SchedulerConfig};
use crate::state::{
    effective, DbSettings, RecoId, RecoState, RecoSubState, RetryPhase, ServerSettings,
};
use crate::store::StateStore;
use crate::telemetry::{EventKind, Telemetry};
use crate::trace::Tracer;
use autoindex::classifier::TrainingExample;
use autoindex::drops::{recommend_drops, DropConfig};
use autoindex::dta::{tune, DtaConfig};
use autoindex::mi::{recommend as mi_recommend, MiConfig, MiSnapshotStore};
use autoindex::validator::{validate, ChangeKind, ValidatorConfig, Verdict};
use autoindex::{CandidateFeatures, ImpactClassifier, RecoAction, RecoSource, Recommendation};
use sqlmini::clock::{Duration, Timestamp};
use sqlmini::engine::{Database, ServiceTier};

/// Which recommender the per-region policy assigns (§5.1.1: "a
/// pre-configured policy in the control plane determines which
/// recommender to invoke").
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RecommenderPolicy {
    MiOnly,
    DtaOnly,
    /// Basic/Standard → MI (low overhead); Premium → DTA (comprehensive).
    ByTier,
}

/// Exponential backoff with deterministic jitter for the Retry state.
///
/// At fleet scale, retrying every failed action on the very next pass is
/// a retry storm: one flaky region makes hundreds of thousands of
/// tenants hammer the same resource in lock-step. Delays grow
/// geometrically from `base` up to `cap`, and each delay is jittered
/// *early* by up to `jitter` so co-failing tenants de-synchronize. The
/// jitter draw is a pure hash of `(seed, recommendation id, attempt)` —
/// no RNG state — so replays are byte-identical regardless of thread
/// interleaving.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Geometric growth factor per additional attempt.
    pub multiplier: f64,
    /// Upper bound on the un-jittered delay.
    pub cap: Duration,
    /// Jitter fraction in [0, 1]: each delay is scaled by a factor drawn
    /// deterministically from [1 - jitter, 1].
    pub jitter: f64,
    /// Seed for the jitter hash.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_hours(1),
            multiplier: 2.0,
            cap: Duration::from_hours(12),
            jitter: 0.25,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// Deterministic uniform draw in [0, 1) from (seed, id, attempt).
    fn jitter01(&self, id: RecoId, attempts: u32) -> f64 {
        let mut z =
            self.seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((attempts as u64) << 32);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// How long a recommendation must sit in Retry before attempt
    /// `attempts + 1` may fire.
    pub fn delay(&self, id: RecoId, attempts: u32) -> Duration {
        let exponent = attempts.saturating_sub(1).min(48) as i32;
        let exp = self.base.millis() as f64 * self.multiplier.max(1.0).powi(exponent);
        let capped = exp.min(self.cap.millis() as f64);
        let scale = 1.0 - self.jitter.clamp(0.0, 1.0) * self.jitter01(id, attempts);
        Duration::from_millis((capped * scale).round() as u64)
    }

    /// Is a retry that entered Retry at `entered` (attempt `attempts`)
    /// eligible to resume at `now`?
    pub fn eligible(&self, id: RecoId, attempts: u32, entered: Timestamp, now: Timestamp) -> bool {
        now.since(entered) >= self.delay(id, attempts)
    }
}

/// Control-plane policy knobs.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PlanePolicy {
    pub recommender: RecommenderPolicy,
    /// How often to run full analysis per database.
    pub analysis_interval: Duration,
    /// Active recommendations expire after this age.
    pub reco_expiry: Duration,
    /// Minimum post-implementation observation before validating.
    pub validation_min_wait: Duration,
    /// Give up waiting for validation data after this long (→ Success
    /// with a no-data note).
    pub validation_max_wait: Duration,
    /// Length of the pre-change comparison window.
    pub validation_before_window: Duration,
    pub max_retry_attempts: u32,
    /// Backoff-with-jitter discipline for resuming parked retries.
    pub retry: RetryPolicy,
    /// Defer index builds to low-activity windows.
    pub schedule_builds: bool,
    /// Only run DTA sessions in low-activity windows (§5.3.1: DTA runs
    /// co-located with the primary and must not interfere with the
    /// customer's workload).
    pub dta_low_activity_only: bool,
    /// Non-terminal recommendations older than this raise incidents.
    pub stuck_horizon: Duration,
    pub mi: MiConfig,
    pub dta: DtaConfig,
    pub validator: ValidatorConfig,
    pub drops: DropConfig,
    pub scheduler: SchedulerConfig,
}

impl Default for PlanePolicy {
    fn default() -> PlanePolicy {
        PlanePolicy {
            recommender: RecommenderPolicy::ByTier,
            analysis_interval: Duration::from_hours(6),
            reco_expiry: Duration::from_days(7),
            validation_min_wait: Duration::from_hours(3),
            validation_max_wait: Duration::from_days(2),
            validation_before_window: Duration::from_hours(12),
            max_retry_attempts: 3,
            retry: RetryPolicy::default(),
            schedule_builds: false,
            dta_low_activity_only: false,
            stuck_horizon: Duration::from_days(3),
            mi: MiConfig::default(),
            dta: DtaConfig::default(),
            validator: ValidatorConfig::default(),
            drops: DropConfig::default(),
            scheduler: SchedulerConfig::default(),
        }
    }
}

/// Short metric-name segment for a recommendation action.
fn action_kind(action: &RecoAction) -> &'static str {
    match action {
        RecoAction::CreateIndex { .. } => "create_index",
        RecoAction::DropIndex { .. } => "drop_index",
    }
}

/// One database under management.
#[derive(Debug)]
pub struct ManagedDb {
    pub db: Database,
    pub settings: DbSettings,
    pub server: ServerSettings,
    pub mi_store: MiSnapshotStore,
    /// When usage observation began (for the drop analyzer's window).
    pub observed_since: Timestamp,
    pub last_analysis: Option<Timestamp>,
}

impl ManagedDb {
    pub fn new(db: Database, settings: DbSettings, server: ServerSettings) -> ManagedDb {
        let observed_since = db.clock().now();
        ManagedDb {
            db,
            settings,
            server,
            mi_store: MiSnapshotStore::new(),
            observed_since,
            last_analysis: None,
        }
    }
}

/// The per-region control plane.
#[derive(Debug)]
pub struct ControlPlane {
    pub store: StateStore,
    pub telemetry: Telemetry,
    /// The shard-owned metrics registry the §8.1 dashboard rolls up.
    pub metrics: MetricsRegistry,
    /// Span collector over the tick pipeline; disabled by default.
    pub tracer: Tracer,
    pub faults: FaultInjector,
    pub policy: PlanePolicy,
    /// The MI low-impact classifier, trained online from validation
    /// outcomes across all managed databases (§5.2).
    pub classifier: ImpactClassifier,
}

impl ControlPlane {
    pub fn new(policy: PlanePolicy) -> ControlPlane {
        ControlPlane {
            store: StateStore::new(),
            telemetry: Telemetry::new(),
            metrics: MetricsRegistry::new(),
            tracer: Tracer::disabled(),
            faults: FaultInjector::disabled(),
            policy,
            classifier: ImpactClassifier::default(),
        }
    }

    pub fn with_faults(mut self, faults: FaultInjector) -> ControlPlane {
        self.faults = faults;
        self
    }

    pub fn with_tracing(mut self) -> ControlPlane {
        self.tracer = Tracer::enabled();
        self
    }

    /// One orchestration pass over one database. Call it periodically
    /// (e.g. hourly) as simulated time advances.
    ///
    /// Each pass emits one `tick` span with the four micro-service
    /// phases as children (when tracing is on) and refreshes the
    /// outstanding-recommendation gauges the dashboard reads.
    pub fn tick(&mut self, mdb: &mut ManagedDb) {
        let started = mdb.db.clock().now();
        self.tracer.start("tick", started);
        self.tracer
            .attr("db_hash", format!("{:016x}", crate::telemetry::db_hash(&mdb.db.name)));
        self.maybe_journal_tear(mdb);
        // MI snapshots are cheap and reset-sensitive: take one per tick.
        mdb.mi_store.take_snapshot(&mdb.db);
        self.traced("recommend", mdb, Self::maybe_analyze);
        self.traced("retry", mdb, Self::drive_retries);
        self.traced("implement", mdb, Self::implement_due);
        self.traced("validate", mdb, Self::validate_due);
        self.traced("expire", mdb, Self::expire_stale);
        self.traced("health", mdb, Self::health_check);
        self.refresh_outstanding_gauges();
        self.tracer.end(mdb.db.clock().now());
    }

    /// Run one tick phase inside its own span. A disabled tracer makes
    /// this a plain call — one branch of overhead on the hot path.
    fn traced(&mut self, phase: &str, mdb: &mut ManagedDb, f: fn(&mut Self, &mut ManagedDb)) {
        self.tracer.start(phase, mdb.db.clock().now());
        f(self, mdb);
        self.tracer.end(mdb.db.clock().now());
    }

    /// Outstanding (Active, awaiting implementation) recommendations by
    /// action — §8.1's backlog lines. Gauges, not counters: they track
    /// the *current* level, re-measured at every tick boundary.
    fn refresh_outstanding_gauges(&mut self) {
        let mut creates = 0i64;
        let mut drops = 0i64;
        for r in self.store.all() {
            if r.state == RecoState::Active {
                match &r.recommendation.action {
                    RecoAction::CreateIndex { .. } => creates += 1,
                    RecoAction::DropIndex { .. } => drops += 1,
                }
            }
        }
        self.metrics.gauge_set("outstanding.create", creates);
        self.metrics.gauge_set("outstanding.drop", drops);
    }

    fn effective_settings(&self, mdb: &ManagedDb) -> (bool, bool) {
        effective(mdb.settings, mdb.server)
    }

    /// Raise an incident through both sinks: the on-call incident stream
    /// and the `incident.raised` dashboard counter.
    fn incident(&mut self, db: &str, summary: String, now: Timestamp) {
        self.telemetry.incident(db, summary, now);
        self.metrics.inc("incident.raised");
    }

    // ------------------------------------------------------------------
    // Crash recovery
    // ------------------------------------------------------------------

    /// Injected process death mid-journal-write: tear the final record,
    /// then restart-and-recover. Armed via [`FaultPoint::JournalTear`];
    /// a no-op for injectors that never arm it.
    fn maybe_journal_tear(&mut self, mdb: &ManagedDb) {
        if self.faults.check(FaultPoint::JournalTear).is_none() {
            return;
        }
        let now = mdb.db.clock().now();
        let name = mdb.db.name.clone();
        self.store.corrupt_journal_tail();
        self.recover_store(&name, now);
    }

    /// Crash-recover the journaled store, surfacing the outcome through
    /// telemetry: one `StoreRecovered` event, one `JournalEntryTruncated`
    /// per dropped record, one `RecommendationReparked` per mid-flight
    /// recommendation parked back into Retry, and an incident whenever
    /// data was actually lost.
    pub fn recover_store(&mut self, db_name: &str, now: Timestamp) -> crate::store::RecoveryReport {
        let report = self.store.crash_and_recover();
        self.telemetry.emit(
            EventKind::StoreRecovered,
            db_name,
            format!("replayed {} entries", report.replayed),
            now,
        );
        for _ in 0..report.truncated {
            self.telemetry
                .emit(EventKind::JournalEntryTruncated, db_name, "", now);
        }
        for id in &report.reparked {
            self.telemetry.emit(
                EventKind::RecommendationReparked,
                db_name,
                format!("{id}"),
                now,
            );
        }
        self.metrics.inc("recovery.runs");
        self.metrics
            .add("recovery.entries_replayed", report.replayed as u64);
        self.metrics
            .add("recovery.entries_truncated", report.truncated as u64);
        self.metrics
            .add("recovery.reparked", report.reparked.len() as u64);
        self.metrics.observe_with(
            "recovery.replayed_per_run",
            report.replayed as u64,
            &crate::metrics::Histogram::count_bounds(),
        );
        if report.torn_tail {
            self.metrics.inc("recovery.torn_tail");
            self.incident(
                db_name,
                format!(
                    "journal tail torn: {} entries lost, {} recommendations re-parked",
                    report.truncated,
                    report.reparked.len()
                ),
                now,
            );
        }
        report
    }

    // ------------------------------------------------------------------
    // Analysis micro-service
    // ------------------------------------------------------------------

    fn maybe_analyze(&mut self, mdb: &mut ManagedDb) {
        let now = mdb.db.clock().now();
        if let Some(last) = mdb.last_analysis {
            if now.since(last) < self.policy.analysis_interval {
                return;
            }
        }
        mdb.last_analysis = Some(now);
        self.telemetry
            .emit(EventKind::AnalysisStarted, &mdb.db.name, "", now);

        let use_dta = match self.policy.recommender {
            RecommenderPolicy::MiOnly => false,
            RecommenderPolicy::DtaOnly => true,
            RecommenderPolicy::ByTier => mdb.db.config.tier == ServiceTier::Premium,
        };
        // Interference avoidance: a DTA session competes with the
        // customer's workload for the primary's resources, so it can be
        // restricted to low-activity windows. MI analysis is DMV-snapshot
        // arithmetic and is always safe.
        let use_dta = use_dta
            && (!self.policy.dta_low_activity_only
                || is_low_activity(&mdb.db, &self.policy.scheduler, now));

        let mut new_recos: Vec<Recommendation> = Vec::new();
        if use_dta {
            if let Some(kind) = self.faults.check(FaultPoint::DtaSession) {
                self.telemetry.emit(
                    EventKind::DtaSessionAborted,
                    &mdb.db.name,
                    format!("{kind:?}"),
                    now,
                );
            } else {
                let report = tune(&mut mdb.db, &self.policy.dta);
                self.metrics.inc("dta.sessions");
                self.metrics.add("dta.whatif.issued", report.what_if.issued);
                self.metrics
                    .add("dta.whatif.saved.cache", report.what_if.saved_cache);
                self.metrics
                    .add("dta.whatif.saved.pruning", report.what_if.saved_pruning);
                if report.aborted {
                    self.metrics.inc("dta.sessions.aborted");
                    self.telemetry
                        .emit(EventKind::DtaSessionAborted, &mdb.db.name, "budget", now);
                }
                new_recos.extend(report.recommendations);
            }
        } else {
            let analysis = mi_recommend(&mdb.db, &mdb.mi_store, &self.policy.mi, &self.classifier);
            new_recos.extend(analysis.recommendations);
        }

        // Drop analysis runs for everyone.
        for p in recommend_drops(&mdb.db, &self.policy.drops, mdb.observed_since) {
            new_recos.push(p.recommendation);
        }

        for reco in new_recos {
            if self.is_duplicate_reco(&mdb.db.name, &reco) {
                continue;
            }
            self.metrics
                .inc(&format!("reco.created.{}", action_kind(&reco.action)));
            self.metrics
                .inc(&format!("reco.created.source.{:?}", reco.source));
            self.store.insert(&mdb.db.name, reco, now);
            self.telemetry
                .emit(EventKind::RecommendationCreated, &mdb.db.name, "", now);
        }
        self.telemetry
            .emit(EventKind::AnalysisCompleted, &mdb.db.name, "", now);
    }

    /// A recommendation duplicates an open or recently-succeeded one when
    /// it proposes the same action on the same object.
    fn is_duplicate_reco(&self, db_name: &str, reco: &Recommendation) -> bool {
        self.store.for_database(db_name).any(|r| {
            let same_action = match (&r.recommendation.action, &reco.action) {
                (RecoAction::CreateIndex { def: a }, RecoAction::CreateIndex { def: b }) => {
                    a.table == b.table && a.key_columns == b.key_columns
                }
                (
                    RecoAction::DropIndex { index: a, .. },
                    RecoAction::DropIndex { index: b, .. },
                ) => a == b,
                _ => false,
            };
            same_action
                && (!r.state.is_terminal()
                    || matches!(r.state, RecoState::Success | RecoState::Reverted))
        })
    }

    // ------------------------------------------------------------------
    // Implementation micro-service
    // ------------------------------------------------------------------

    /// User-initiated application of one recommendation (the portal's
    /// "apply" button) — bypasses the auto-implement setting but is still
    /// validated by the system (§2).
    pub fn apply_manually(&mut self, mdb: &mut ManagedDb, id: RecoId) -> bool {
        let Some(r) = self.store.get(id) else {
            return false;
        };
        if r.state != RecoState::Active || r.database != mdb.db.name {
            return false;
        }
        self.implement_one(mdb, id)
    }

    fn implement_due(&mut self, mdb: &mut ManagedDb) {
        let now = mdb.db.clock().now();
        let (auto_create, auto_drop) = self.effective_settings(mdb);
        if self.policy.schedule_builds && !is_low_activity(&mdb.db, &self.policy.scheduler, now) {
            return;
        }
        let due: Vec<RecoId> = self
            .store
            .for_database(&mdb.db.name)
            .filter(|r| r.state == RecoState::Active)
            .filter(|r| match &r.recommendation.action {
                RecoAction::CreateIndex { .. } => auto_create,
                RecoAction::DropIndex { .. } => auto_drop,
            })
            .map(|r| r.id)
            .collect();
        for id in due {
            self.implement_one(mdb, id);
        }
    }

    fn implement_one(&mut self, mdb: &mut ManagedDb, id: RecoId) -> bool {
        let now = mdb.db.clock().now();
        let action = match self.store.get(id) {
            Some(r) => r.recommendation.action.clone(),
            None => return false,
        };
        self.store.update(id, |r| {
            r.transition(RecoState::Implementing, now, "implementation started")
                .expect("Active/Retry -> Implementing");
        });
        self.telemetry
            .emit(EventKind::ImplementStarted, &mdb.db.name, "", now);
        self.metrics.inc("implement.started");

        let fault_point = match &action {
            RecoAction::CreateIndex { .. } => FaultPoint::IndexBuild,
            RecoAction::DropIndex { .. } => FaultPoint::IndexDrop,
        };
        if let Some(kind) = self.faults.check(fault_point) {
            return self.handle_fault(mdb, id, RetryPhase::Implement, kind, now);
        }

        let result: Result<(), String> = match &action {
            RecoAction::CreateIndex { def } => match mdb.db.create_index(def.clone()) {
                Ok((ix_id, _report)) => {
                    self.store.update(id, |r| {
                        r.implemented_index = Some(ix_id);
                    });
                    Ok(())
                }
                Err(e) => Err(e.to_string()),
            },
            RecoAction::DropIndex { index, .. } => match mdb.db.drop_index(*index) {
                Ok(def) => {
                    self.store.update(id, |r| {
                        r.dropped_def = Some(def);
                    });
                    Ok(())
                }
                Err(e) => Err(e.to_string()),
            },
        };

        match result {
            Ok(()) => {
                self.store.update(id, |r| {
                    r.implemented_at = Some(now);
                    r.transition(RecoState::Validating, now, "implemented")
                        .expect("Implementing -> Validating");
                });
                self.telemetry
                    .emit(EventKind::ImplementSucceeded, &mdb.db.name, "", now);
                self.metrics
                    .inc(&format!("implement.succeeded.{}", action_kind(&action)));
                self.telemetry
                    .emit(EventKind::ValidationStarted, &mdb.db.name, "", now);
                true
            }
            Err(e) => {
                // Engine-level failures (duplicate name, missing table)
                // are irrecoverable: the paper's Error terminal state.
                self.store.update(id, |r| {
                    r.transition(RecoState::Error, now, e.clone())
                        .expect("Implementing -> Error");
                    r.substate = RecoSubState::ErrorDetail(e.clone());
                });
                self.telemetry
                    .emit(EventKind::ImplementFailedFatal, &mdb.db.name, e, now);
                self.metrics.inc("implement.failed.fatal");
                false
            }
        }
    }

    fn handle_fault(
        &mut self,
        mdb: &ManagedDb,
        id: RecoId,
        phase: RetryPhase,
        kind: FaultKind,
        now: Timestamp,
    ) -> bool {
        match kind {
            FaultKind::Transient => {
                let attempts = self
                    .store
                    .update(id, |r| r.enter_retry(phase, now, "transient fault"))
                    .and_then(Result::ok)
                    .unwrap_or(0);
                self.telemetry.emit(
                    EventKind::ImplementFailedTransient,
                    &mdb.db.name,
                    format!("attempt {attempts}"),
                    now,
                );
                self.metrics.inc("implement.failed.transient");
                if attempts > self.policy.max_retry_attempts {
                    self.store.update(id, |r| {
                        r.transition(RecoState::Error, now, "retry budget exhausted")
                            .expect("Retry -> Error");
                    });
                    self.metrics.inc("retry.exhausted");
                    self.incident(&mdb.db.name, format!("{id}: retries exhausted"), now);
                }
                false
            }
            FaultKind::Fatal => {
                self.store.update(id, |r| {
                    r.transition(RecoState::Error, now, "fatal fault")
                        .expect("-> Error");
                });
                self.telemetry
                    .emit(EventKind::ImplementFailedFatal, &mdb.db.name, "fault", now);
                self.metrics.inc("implement.failed.fatal");
                self.incident(&mdb.db.name, format!("{id}: fatal fault"), now);
                false
            }
        }
    }

    /// Resume recommendations parked in Retry — but only once their
    /// backoff window has elapsed. Retrying on the very next pass is a
    /// retry storm at fleet scale; the [`RetryPolicy`] spaces attempts
    /// geometrically with deterministic jitter on simulated time.
    fn drive_retries(&mut self, mdb: &mut ManagedDb) {
        let now = mdb.db.clock().now();
        let retryable: Vec<(RecoId, RetryPhase, u32, Timestamp)> = self
            .store
            .for_database(&mdb.db.name)
            .filter(|r| r.state == RecoState::Retry)
            .filter_map(|r| match &r.substate {
                RecoSubState::RetryOf { phase, attempts } => {
                    // The Retry entry instant is the last transition; a
                    // reco never transitions while sitting in Retry.
                    let entered = r.history.last().map(|t| t.at).unwrap_or(r.created_at);
                    Some((r.id, *phase, *attempts, entered))
                }
                _ => None,
            })
            .collect();
        for (id, phase, attempts, entered) in retryable {
            if !self.policy.retry.eligible(id, attempts, entered, now) {
                self.telemetry.emit(
                    EventKind::RetryBackoffWait,
                    &mdb.db.name,
                    format!("attempt {attempts}"),
                    now,
                );
                self.metrics.inc("retry.backoff_wait");
                continue;
            }
            self.metrics.inc("retry.resumed");
            self.metrics
                .observe_time("retry.delay_ms", self.policy.retry.delay(id, attempts).millis());
            match phase {
                RetryPhase::Implement => {
                    // Re-enter the implementation path.
                    self.implement_one(mdb, id);
                }
                RetryPhase::Validate => {
                    self.store.update(id, |r| {
                        r.transition(RecoState::Validating, now, "retrying validation")
                            .expect("Retry -> Validating");
                    });
                }
                RetryPhase::Revert => {
                    self.store.update(id, |r| {
                        r.transition(RecoState::Reverting, now, "retrying revert")
                            .expect("Retry -> Reverting");
                    });
                    self.revert_one(mdb, id);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Validation micro-service
    // ------------------------------------------------------------------

    fn validate_due(&mut self, mdb: &mut ManagedDb) {
        let now = mdb.db.clock().now();
        let due: Vec<(RecoId, Timestamp)> = self
            .store
            .for_database(&mdb.db.name)
            .filter(|r| r.state == RecoState::Validating)
            .filter_map(|r| r.implemented_at.map(|t| (r.id, t)))
            .collect();
        for (id, implemented_at) in due {
            let waited = now.since(implemented_at);
            if waited < self.policy.validation_min_wait {
                continue;
            }
            if let Some(kind) = self.faults.check(FaultPoint::ValidationRead) {
                match kind {
                    FaultKind::Transient => {
                        let attempts = self
                            .store
                            .update(id, |r| {
                                r.enter_retry(RetryPhase::Validate, now, "stats unavailable")
                            })
                            .and_then(Result::ok)
                            .unwrap_or(0);
                        self.metrics.inc("validate.failed.transient");
                        if attempts > self.policy.max_retry_attempts {
                            self.store.update(id, |r| {
                                r.transition(RecoState::Error, now, "validation retries exhausted")
                                    .expect("Retry -> Error");
                            });
                            self.metrics.inc("retry.exhausted");
                            self.incident(
                                &mdb.db.name,
                                format!("{id}: validation retries exhausted"),
                                now,
                            );
                        }
                    }
                    FaultKind::Fatal => {
                        self.store.update(id, |r| {
                            r.transition(RecoState::Error, now, "validation fatal")
                                .expect("Validating -> Error");
                        });
                        self.metrics.inc("validate.failed.fatal");
                    }
                }
                continue;
            }

            let (index_name, kind) = match self.store.get(id) {
                Some(r) => match &r.recommendation.action {
                    RecoAction::CreateIndex { def } => (def.name.clone(), ChangeKind::Created),
                    RecoAction::DropIndex { name, .. } => (name.clone(), ChangeKind::Dropped),
                },
                None => continue,
            };
            let before = (
                Timestamp(
                    implemented_at
                        .millis()
                        .saturating_sub(self.policy.validation_before_window.millis()),
                ),
                implemented_at,
            );
            let after = (implemented_at, now);
            let outcome = validate(
                &mdb.db,
                &index_name,
                kind,
                before,
                after,
                &self.policy.validator,
            );

            match outcome.verdict {
                Verdict::NoData => {
                    if waited >= self.policy.validation_max_wait {
                        self.finish_validation(mdb, id, "no qualifying data", true, now);
                        self.telemetry
                            .emit(EventKind::ValidationNoData, &mdb.db.name, "", now);
                        self.metrics.inc("validate.nodata");
                        self.metrics.observe_time("validation.wait_ms", waited.millis());
                    }
                    // else: keep waiting.
                }
                Verdict::Improved => {
                    self.train_classifier(mdb, id, true);
                    self.finish_validation(mdb, id, "improved", true, now);
                    self.telemetry.emit(
                        EventKind::ValidationImproved,
                        &mdb.db.name,
                        format!("{:.0}%", -outcome.aggregate_cpu_change * 100.0),
                        now,
                    );
                    self.metrics.inc("validate.improved");
                    self.metrics.observe_time("validation.wait_ms", waited.millis());
                }
                Verdict::Inconclusive => {
                    if waited >= self.policy.validation_max_wait {
                        self.train_classifier(mdb, id, false);
                        self.finish_validation(mdb, id, "inconclusive", true, now);
                        self.telemetry.emit(
                            EventKind::ValidationInconclusive,
                            &mdb.db.name,
                            "",
                            now,
                        );
                        self.metrics.inc("validate.inconclusive");
                        self.metrics.observe_time("validation.wait_ms", waited.millis());
                    }
                }
                Verdict::Regressed => {
                    self.train_classifier(mdb, id, false);
                    self.store.update(id, |r| {
                        r.transition(RecoState::Reverting, now, "regression detected")
                            .expect("Validating -> Reverting");
                        r.substate = RecoSubState::ValidationDetail(format!(
                            "aggregate cpu change {:+.0}%",
                            outcome.aggregate_cpu_change * 100.0
                        ));
                    });
                    self.telemetry.emit(
                        EventKind::ValidationRegressed,
                        &mdb.db.name,
                        format!("{:+.0}%", outcome.aggregate_cpu_change * 100.0),
                        now,
                    );
                    self.metrics.inc("validate.regressed");
                    self.metrics.observe_time("validation.wait_ms", waited.millis());
                    self.telemetry
                        .emit(EventKind::RevertStarted, &mdb.db.name, "", now);
                    self.metrics.inc("revert.cause.validation_regression");
                    self.revert_one(mdb, id);
                }
            }
        }
    }

    fn finish_validation(
        &mut self,
        _mdb: &ManagedDb,
        id: RecoId,
        note: &str,
        _success: bool,
        now: Timestamp,
    ) {
        self.store.update(id, |r| {
            r.transition(RecoState::Success, now, note)
                .expect("Validating -> Success");
        });
    }

    /// Feed a validation outcome back into the MI classifier (§5.2: "we
    /// use data from previous index validations ... to train a
    /// classifier").
    fn train_classifier(&mut self, mdb: &ManagedDb, id: RecoId, improved: bool) {
        let Some(r) = self.store.get(id) else { return };
        if r.recommendation.source != RecoSource::MissingIndex {
            return;
        }
        let RecoAction::CreateIndex { def } = &r.recommendation.action else {
            return;
        };
        let rows = mdb.db.table_rows(def.table) as f64;
        let ex = TrainingExample {
            features: CandidateFeatures {
                est_impact_pct: r.recommendation.estimated_improvement * 100.0,
                log_table_rows: rows.max(1.0).log10(),
                log_index_size: (r.recommendation.estimated_size_bytes as f64)
                    .max(1.0)
                    .log10(),
                log_demand: (1.0 + r.recommendation.impacted_queries.len() as f64).log10(),
                n_key_columns: def.key_columns.len() as f64,
            },
            improved,
        };
        self.classifier.train_one(&ex, 0.05);
    }

    // ------------------------------------------------------------------
    // Revert
    // ------------------------------------------------------------------

    fn revert_one(&mut self, mdb: &mut ManagedDb, id: RecoId) {
        let now = mdb.db.clock().now();
        let Some(r) = self.store.get(id) else { return };
        let action = r.recommendation.action.clone();
        let source = r.recommendation.source;
        let implemented_index = r.implemented_index;
        let dropped_def = r.dropped_def.clone();
        self.tracer.start("revert", now);
        self.tracer.attr("action", action_kind(&action));

        if let Some(kind) = self.faults.check(FaultPoint::IndexDrop) {
            match kind {
                FaultKind::Transient => {
                    let attempts = self
                        .store
                        .update(id, |r| {
                            r.enter_retry(RetryPhase::Revert, now, "revert fault")
                        })
                        .and_then(Result::ok)
                        .unwrap_or(0);
                    self.telemetry
                        .emit(EventKind::RevertFailedTransient, &mdb.db.name, "", now);
                    self.metrics.inc("revert.failed.transient");
                    if attempts > self.policy.max_retry_attempts {
                        self.store.update(id, |r| {
                            r.transition(RecoState::Error, now, "revert retries exhausted")
                                .expect("Retry -> Error");
                        });
                        self.metrics.inc("retry.exhausted");
                        self.incident(
                            &mdb.db.name,
                            format!("{id}: revert retries exhausted"),
                            now,
                        );
                    }
                }
                FaultKind::Fatal => {
                    self.store.update(id, |r| {
                        r.transition(RecoState::Error, now, "revert fatal")
                            .expect("Reverting -> Error");
                    });
                    self.metrics.inc("revert.failed.fatal");
                    self.incident(&mdb.db.name, format!("{id}: revert fatal"), now);
                }
            }
            self.tracer.attr("outcome", "faulted");
            self.tracer.end(mdb.db.clock().now());
            return;
        }

        let ok = match (&action, implemented_index, dropped_def) {
            (RecoAction::CreateIndex { .. }, Some(ix), _) => mdb.db.drop_index(ix).is_ok(),
            (RecoAction::DropIndex { .. }, _, Some(def)) => mdb.db.create_index(def).is_ok(),
            _ => false,
        };
        if ok {
            self.store.update(id, |r| {
                r.transition(RecoState::Reverted, now, "reverted")
                    .expect("Reverting -> Reverted");
            });
            self.telemetry
                .emit(EventKind::RevertSucceeded, &mdb.db.name, "", now);
            self.metrics.inc("revert.succeeded");
            self.metrics
                .inc(&format!("revert.action.{}", action_kind(&action)));
            self.metrics.inc(&format!("revert.source.{source:?}"));
            self.tracer.attr("outcome", "reverted");
        } else {
            // Index already gone / recreated externally: §4's well-known
            // error class, processed automatically.
            self.store.update(id, |r| {
                r.transition(RecoState::Error, now, "revert target missing")
                    .expect("Reverting -> Error");
            });
            self.metrics.inc("revert.target_missing");
            self.tracer.attr("outcome", "target_missing");
        }
        self.tracer.end(mdb.db.clock().now());
    }

    // ------------------------------------------------------------------
    // Expiry + health micro-service
    // ------------------------------------------------------------------

    fn expire_stale(&mut self, mdb: &mut ManagedDb) {
        let now = mdb.db.clock().now();
        let expiry = self.policy.reco_expiry;
        let stale: Vec<RecoId> = self
            .store
            .for_database(&mdb.db.name)
            .filter(|r| r.state == RecoState::Active && now.since(r.created_at) >= expiry)
            .map(|r| r.id)
            .collect();
        for id in stale {
            self.store.update(id, |r| {
                r.transition(RecoState::Expired, now, "aged out")
                    .expect("Active -> Expired");
            });
            self.telemetry
                .emit(EventKind::RecommendationExpired, &mdb.db.name, "", now);
            self.metrics.inc("reco.expired");
        }
    }

    fn health_check(&mut self, mdb: &mut ManagedDb) {
        let now = mdb.db.clock().now();
        let horizon = Timestamp(
            now.millis()
                .saturating_sub(self.policy.stuck_horizon.millis()),
        );
        for id in self.store.stuck_since(horizon) {
            let Some(r) = self.store.get(id) else {
                continue;
            };
            if r.database != mdb.db.name {
                continue;
            }
            // Active recommendations awaiting the user are not stuck; the
            // expiry path ages them out without paging anyone.
            if r.state == RecoState::Active {
                continue;
            }
            let state = r.state;
            self.incident(&mdb.db.name, format!("{id} stuck in {state:?}"), now);
            self.metrics.inc("health.stuck_closed");
            // Automated corrective action where safe: park in a terminal
            // state so the pipeline doesn't wedge.
            self.store.update(id, |r| {
                let target = if r.state == RecoState::Active {
                    RecoState::Expired
                } else {
                    RecoState::Error
                };
                let _ = r.transition(target, now, "auto-closed by health check");
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultInjector;
    use sqlmini::clock::SimClock;
    use sqlmini::engine::DbConfig;
    use sqlmini::query::{CmpOp, Predicate, QueryTemplate, SelectQuery, Statement};
    use sqlmini::schema::{ColumnDef, ColumnId, TableDef, TableId};
    use sqlmini::types::{Value, ValueType};

    fn managed_db(seed: u64) -> (ManagedDb, QueryTemplate, TableId) {
        let mut db = Database::new(
            format!("tenant{seed}"),
            DbConfig {
                seed,
                ..DbConfig::default()
            },
            SimClock::new(),
        );
        let t = db
            .create_table(TableDef::new(
                "orders",
                vec![
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("customer_id", ValueType::Int),
                    ColumnDef::new("total", ValueType::Float),
                ],
            ))
            .unwrap();
        db.load_rows(
            t,
            (0..20_000i64).map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 400),
                    Value::Float((i % 700) as f64),
                ]
            }),
        );
        db.rebuild_stats(t);
        let mut q = SelectQuery::new(t);
        q.predicates = vec![Predicate::param(ColumnId(1), CmpOp::Eq, 0)];
        q.projection = vec![ColumnId(0), ColumnId(2)];
        let tpl = QueryTemplate::new(Statement::Select(q), 1);
        let settings = DbSettings {
            auto_create: crate::state::Setting::On,
            auto_drop: crate::state::Setting::On,
        };
        (
            ManagedDb::new(db, settings, ServerSettings::default()),
            tpl,
            t,
        )
    }

    /// Drive workload + control plane through `hours` of simulated time.
    fn drive(plane: &mut ControlPlane, mdb: &mut ManagedDb, tpl: &QueryTemplate, hours: u64) {
        for h in 0..hours {
            for i in 0..20 {
                mdb.db
                    .execute(tpl, &[Value::Int(((h * 20 + i) % 400) as i64)])
                    .unwrap();
            }
            mdb.db.clock().advance(Duration::from_hours(1));
            plane.tick(mdb);
        }
    }

    #[test]
    fn retry_policy_backoff_is_deterministic_capped_and_jittered_early() {
        let p = RetryPolicy::default();
        let id = RecoId(42);
        assert_eq!(p.delay(id, 1), p.delay(id, 1), "pure function of inputs");
        let no_jitter = RetryPolicy {
            jitter: 0.0,
            ..p.clone()
        };
        assert_eq!(no_jitter.delay(id, 1), no_jitter.base);
        assert_eq!(no_jitter.delay(id, 2).millis(), no_jitter.base.millis() * 2);
        assert_eq!(no_jitter.delay(id, 10), no_jitter.cap, "growth is capped");
        // Jitter only shortens (de-synchronizes retries without ever
        // extending the worst case), bounded by the jitter fraction.
        for attempts in 1..6 {
            for raw in 0..50u64 {
                let jittered = p.delay(RecoId(raw), attempts);
                let unjittered = no_jitter.delay(RecoId(raw), attempts);
                assert!(jittered <= unjittered);
                assert!(
                    jittered.millis() as f64 >= unjittered.millis() as f64 * (1.0 - p.jitter) - 1.0
                );
            }
        }
        // ...and actually spreads distinct ids apart.
        let spread: std::collections::BTreeSet<u64> =
            (0..20).map(|i| p.delay(RecoId(i), 1).millis()).collect();
        assert!(spread.len() > 10, "jitter must spread retries: {spread:?}");
    }

    #[test]
    fn journal_tear_fault_recovers_through_telemetry() {
        let (mut mdb, tpl, _) = managed_db(9);
        let mut faults = FaultInjector::disabled();
        faults.script(
            crate::faults::FaultPoint::JournalTear,
            3,
            crate::faults::FaultKind::Transient,
        );
        let mut plane = ControlPlane::new(PlanePolicy::default()).with_faults(faults);
        drive(&mut plane, &mut mdb, &tpl, 24);
        assert_eq!(plane.telemetry.count(EventKind::StoreRecovered), 3);
        assert!(plane.faults.scripted_is_empty());
        // The loop kept working through the tears.
        drive(&mut plane, &mut mdb, &tpl, 12);
        assert!(!plane.store.is_empty());
    }

    #[test]
    fn closed_loop_creates_and_validates_index() {
        let (mut mdb, tpl, t) = managed_db(1);
        let mut plane = ControlPlane::new(PlanePolicy {
            analysis_interval: Duration::from_hours(4),
            validation_min_wait: Duration::from_hours(3),
            ..PlanePolicy::default()
        });
        drive(&mut plane, &mut mdb, &tpl, 24);
        // An auto index must exist on customer_id...
        let auto_ix = mdb
            .db
            .catalog()
            .indexes()
            .find(|(_, d)| d.key_columns.first() == Some(&ColumnId(1)) && d.table == t);
        assert!(auto_ix.is_some(), "no auto index created");
        // ...and its recommendation must have reached Success.
        let success = plane.store.all().any(|r| r.state == RecoState::Success);
        assert!(success, "states: {:?}", plane.store.count_by_state());
        assert!(plane.telemetry.count(EventKind::ValidationImproved) >= 1);
        assert_eq!(plane.telemetry.count(EventKind::RevertSucceeded), 0);
    }

    #[test]
    fn dta_session_metrics_feed_dashboard() {
        let (mut mdb, tpl, _) = managed_db(6);
        let mut plane = ControlPlane::new(PlanePolicy {
            recommender: RecommenderPolicy::DtaOnly,
            analysis_interval: Duration::from_hours(4),
            ..PlanePolicy::default()
        });
        drive(&mut plane, &mut mdb, &tpl, 24);
        let sessions = plane.metrics.counter("dta.sessions");
        let issued = plane.metrics.counter("dta.whatif.issued");
        let saved_cache = plane.metrics.counter("dta.whatif.saved.cache");
        assert!(sessions >= 1, "DtaOnly policy must run DTA sessions");
        assert!(issued > 0, "sessions must issue what-if calls");
        // Every session re-costs the first greedy round against configs
        // the single-benefit pass already cached.
        assert!(saved_cache > 0, "cost cache must absorb repeat configs");
        assert_eq!(plane.metrics.counter("dta.sessions.aborted"), 0);

        let snap = crate::region::DashboardSnapshot::from_metrics(
            &plane.metrics,
            Duration::from_hours(24),
        );
        assert_eq!(snap.dta_sessions, sessions);
        assert_eq!(snap.what_if_issued, issued);
        assert_eq!(snap.what_if_saved_cache, saved_cache);
        assert!(snap.what_if_cache_hit_rate() > 0.0);
        assert!(snap.what_if_saved_fraction() > 0.0);
        let rendered = snap.render();
        assert!(
            rendered.contains("DTA what-if budget"),
            "dashboard must render the what-if block once sessions ran:\n{rendered}"
        );
    }

    #[test]
    fn no_auto_create_without_permission() {
        let (mut mdb, tpl, _) = managed_db(2);
        mdb.settings = DbSettings::default(); // inherit: server default off
        let mut plane = ControlPlane::new(PlanePolicy::default());
        drive(&mut plane, &mut mdb, &tpl, 24);
        // Recommendations exist but none implemented.
        assert!(plane.store.len() > 0, "recommendations should be generated");
        assert_eq!(plane.telemetry.count(EventKind::ImplementStarted), 0);
        assert_eq!(
            mdb.db.catalog().n_indexes(),
            0,
            "nothing may be implemented without permission"
        );
    }

    #[test]
    fn transient_faults_retried_to_success() {
        let (mut mdb, tpl, _) = managed_db(3);
        let mut faults = FaultInjector::disabled();
        faults.script(FaultPoint::IndexBuild, 2, FaultKind::Transient);
        let mut plane = ControlPlane::new(PlanePolicy::default()).with_faults(faults);
        drive(&mut plane, &mut mdb, &tpl, 30);
        assert!(plane.telemetry.count(EventKind::ImplementFailedTransient) >= 2);
        assert!(
            plane.telemetry.count(EventKind::ImplementSucceeded) >= 1,
            "retries must eventually succeed: {:?}",
            plane.store.count_by_state()
        );
        assert!(plane.store.all().any(|r| r.state == RecoState::Success));
    }

    #[test]
    fn retry_budget_exhaustion_raises_incident() {
        let (mut mdb, tpl, _) = managed_db(4);
        let mut faults = FaultInjector::disabled();
        faults.script(FaultPoint::IndexBuild, 99, FaultKind::Transient);
        let mut plane = ControlPlane::new(PlanePolicy {
            max_retry_attempts: 2,
            ..PlanePolicy::default()
        })
        .with_faults(faults);
        drive(&mut plane, &mut mdb, &tpl, 30);
        assert!(plane.store.all().any(|r| r.state == RecoState::Error));
        assert!(!plane.telemetry.incidents().is_empty());
    }

    #[test]
    fn store_recovery_mid_flight() {
        let (mut mdb, tpl, _) = managed_db(5);
        let mut plane = ControlPlane::new(PlanePolicy::default());
        drive(&mut plane, &mut mdb, &tpl, 10);
        let before = plane.store.count_by_state();
        plane.store.crash_and_recover();
        assert_eq!(plane.store.count_by_state(), before);
        // The loop keeps functioning after recovery.
        drive(&mut plane, &mut mdb, &tpl, 20);
        assert!(plane.store.all().any(|r| r.state == RecoState::Success));
    }

    #[test]
    fn stale_recommendations_expire() {
        let (mut mdb, tpl, _) = managed_db(6);
        // No auto-implementation: recommendations sit in Active.
        mdb.settings = DbSettings::default();
        let mut plane = ControlPlane::new(PlanePolicy {
            reco_expiry: Duration::from_days(2),
            ..PlanePolicy::default()
        });
        drive(&mut plane, &mut mdb, &tpl, 24 * 4);
        assert!(
            plane.telemetry.count(EventKind::RecommendationExpired) >= 1,
            "{:?}",
            plane.store.count_by_state()
        );
    }

    #[test]
    fn dta_deferred_outside_low_activity_falls_back_to_mi() {
        let (mut mdb, tpl, _) = managed_db(8);
        mdb.db.config.tier = ServiceTier::Premium;
        let mut plane = ControlPlane::new(PlanePolicy {
            recommender: RecommenderPolicy::DtaOnly,
            dta_low_activity_only: true,
            analysis_interval: Duration::from_hours(4),
            ..PlanePolicy::default()
        });
        // Build two full days of flat always-busy history first (no
        // ticks) so the 2-day activity profile sees every hour-of-day
        // exactly twice: everything is peak, nothing is "low activity".
        for h in 0..48u64 {
            for i in 0..20 {
                mdb.db
                    .execute(&tpl, &[Value::Int(((h * 20 + i) % 400) as i64)])
                    .unwrap();
            }
            mdb.db.clock().advance(Duration::from_hours(1));
        }
        drive(&mut plane, &mut mdb, &tpl, 30);
        // DTA was suppressed during busy hours; recommendations (if any)
        // came from the MI fallback path.
        for r in plane.store.all() {
            assert_ne!(
                r.recommendation.source,
                autoindex::RecoSource::Dta,
                "DTA must not run during busy hours"
            );
        }
    }

    #[test]
    fn manual_apply_bypasses_setting_but_validates() {
        let (mut mdb, tpl, _) = managed_db(7);
        mdb.settings = DbSettings::default(); // auto off
        let mut plane = ControlPlane::new(PlanePolicy::default());
        drive(&mut plane, &mut mdb, &tpl, 12);
        let id = plane
            .store
            .all()
            .find(|r| r.state == RecoState::Active)
            .map(|r| r.id)
            .expect("an active recommendation");
        assert!(plane.apply_manually(&mut mdb, id));
        assert_eq!(plane.store.get(id).unwrap().state, RecoState::Validating);
        // Keep driving: validation completes.
        drive(&mut plane, &mut mdb, &tpl, 12);
        assert_eq!(plane.store.get(id).unwrap().state, RecoState::Success);
    }
}
