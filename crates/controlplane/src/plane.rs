//! The control plane proper: the micro-services of §4, driving each
//! managed database's auto-indexing lifecycle.
//!
//! The four micro-services the paper enumerates run as the six explicit
//! pipeline stages of [`crate::stages`], looped by [`ControlPlane::tick`]:
//!
//! 1. **Analysis** — invoke the recommender (MI or DTA per the tier
//!    policy) plus the drop analyzer, and register new recommendations;
//! 2. **Implementation** — apply Active recommendations when the user's
//!    settings allow, preferring low-activity windows, with fault-aware
//!    retry;
//! 3. **Validation** — once enough post-change statistics accumulated,
//!    run the statistical validator and either confirm (Success) or
//!    auto-revert (Reverting → Reverted); validation outcomes also train
//!    the MI classifier online;
//! 4. **Health** — detect stuck recommendations and raise incidents,
//!    taking automated corrective action where safe.
//!
//! Each stage also knows when it next has work
//! ([`crate::stages::Stage::due`]); `tick` returns the resulting
//! [`WakeSchedule`] so a fleet driver can skip databases with nothing
//! due instead of dense-polling every tenant every simulated hour.

use crate::faults::{FaultInjector, FaultPoint};
use crate::metrics::MetricsRegistry;
use crate::scheduler::SchedulerConfig;
use crate::stages::{Stage, WakeSchedule};
use crate::state::{effective, DbSettings, RecoId, RecoState, ServerSettings};
use crate::store::{CompactionPolicy, StateStore};
use crate::telemetry::{EventKind, Telemetry};
use crate::trace::Tracer;
use autoindex::drops::DropConfig;
use autoindex::dta::DtaConfig;
use autoindex::mi::{MiConfig, MiSnapshotStore};
use autoindex::validator::ValidatorConfig;
use autoindex::{ImpactClassifier, RecoAction, Recommendation};
use sqlmini::clock::{Duration, Timestamp};
use sqlmini::engine::Database;

/// Which recommender the per-region policy assigns (§5.1.1: "a
/// pre-configured policy in the control plane determines which
/// recommender to invoke").
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RecommenderPolicy {
    MiOnly,
    DtaOnly,
    /// Basic/Standard → MI (low overhead); Premium → DTA (comprehensive).
    ByTier,
}

/// Exponential backoff with deterministic jitter for the Retry state.
///
/// At fleet scale, retrying every failed action on the very next pass is
/// a retry storm: one flaky region makes hundreds of thousands of
/// tenants hammer the same resource in lock-step. Delays grow
/// geometrically from `base` up to `cap`, and each delay is jittered
/// *early* by up to `jitter` so co-failing tenants de-synchronize. The
/// jitter draw is a pure hash of `(seed, recommendation id, attempt)` —
/// no RNG state — so replays are byte-identical regardless of thread
/// interleaving, and the retry stage can compute a parked reco's exact
/// wake instant up front.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Geometric growth factor per additional attempt.
    pub multiplier: f64,
    /// Upper bound on the un-jittered delay.
    pub cap: Duration,
    /// Jitter fraction in [0, 1]: each delay is scaled by a factor drawn
    /// deterministically from [1 - jitter, 1].
    pub jitter: f64,
    /// Seed for the jitter hash.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_hours(1),
            multiplier: 2.0,
            cap: Duration::from_hours(12),
            jitter: 0.25,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// Deterministic uniform draw in [0, 1) from (seed, id, attempt).
    fn jitter01(&self, id: RecoId, attempts: u32) -> f64 {
        let mut z =
            self.seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((attempts as u64) << 32);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// How long a recommendation must sit in Retry before attempt
    /// `attempts + 1` may fire.
    pub fn delay(&self, id: RecoId, attempts: u32) -> Duration {
        let exponent = attempts.saturating_sub(1).min(48) as i32;
        let exp = self.base.millis() as f64 * self.multiplier.max(1.0).powi(exponent);
        let capped = exp.min(self.cap.millis() as f64);
        let scale = 1.0 - self.jitter.clamp(0.0, 1.0) * self.jitter01(id, attempts);
        Duration::from_millis((capped * scale).round() as u64)
    }

    /// Is a retry that entered Retry at `entered` (attempt `attempts`)
    /// eligible to resume at `now`? Equivalent to `now >= entered +
    /// delay`, phrased saturating so clock edge cases cannot overflow.
    pub fn eligible(&self, id: RecoId, attempts: u32, entered: Timestamp, now: Timestamp) -> bool {
        now.since(entered) >= self.delay(id, attempts)
    }
}

/// Control-plane policy knobs.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PlanePolicy {
    pub recommender: RecommenderPolicy,
    /// How often to run full analysis per database.
    pub analysis_interval: Duration,
    /// Active recommendations expire after this age.
    pub reco_expiry: Duration,
    /// Minimum post-implementation observation before validating.
    pub validation_min_wait: Duration,
    /// Give up waiting for validation data after this long (→ Success
    /// with a no-data note).
    pub validation_max_wait: Duration,
    /// Length of the pre-change comparison window.
    pub validation_before_window: Duration,
    pub max_retry_attempts: u32,
    /// Backoff-with-jitter discipline for resuming parked retries.
    pub retry: RetryPolicy,
    /// Defer index builds to low-activity windows.
    pub schedule_builds: bool,
    /// Only run DTA sessions in low-activity windows (§5.3.1: DTA runs
    /// co-located with the primary and must not interfere with the
    /// customer's workload).
    pub dta_low_activity_only: bool,
    /// Non-terminal recommendations older than this raise incidents.
    pub stuck_horizon: Duration,
    pub mi: MiConfig,
    pub dta: DtaConfig,
    pub validator: ValidatorConfig,
    pub drops: DropConfig,
    pub scheduler: SchedulerConfig,
    /// Journal checkpointing/compaction trigger. The check runs at the
    /// end of every executed tick, after the wake schedule is recorded;
    /// it is deterministic in journaled state only, so serial, parallel,
    /// and sparse replays compact at identical points.
    pub journal: CompactionPolicy,
}

impl Default for PlanePolicy {
    fn default() -> PlanePolicy {
        PlanePolicy {
            recommender: RecommenderPolicy::ByTier,
            analysis_interval: Duration::from_hours(6),
            reco_expiry: Duration::from_days(7),
            validation_min_wait: Duration::from_hours(3),
            validation_max_wait: Duration::from_days(2),
            validation_before_window: Duration::from_hours(12),
            max_retry_attempts: 3,
            retry: RetryPolicy::default(),
            schedule_builds: false,
            dta_low_activity_only: false,
            stuck_horizon: Duration::from_days(3),
            mi: MiConfig::default(),
            dta: DtaConfig::default(),
            validator: ValidatorConfig::default(),
            drops: DropConfig::default(),
            scheduler: SchedulerConfig::default(),
            journal: CompactionPolicy::default(),
        }
    }
}

impl PlanePolicy {
    /// Builder-style override of the recommender source — the typical
    /// knob a policy flight varies (e.g. MI-only control vs DTA-only
    /// candidate).
    pub fn with_recommender(mut self, recommender: RecommenderPolicy) -> PlanePolicy {
        self.recommender = recommender;
        self
    }

    /// Builder-style override of the analysis cadence.
    pub fn with_analysis_interval(mut self, interval: Duration) -> PlanePolicy {
        self.analysis_interval = interval;
        self
    }

    /// Builder-style override of the validation minimum wait.
    pub fn with_validation_min_wait(mut self, wait: Duration) -> PlanePolicy {
        self.validation_min_wait = wait;
        self
    }
}

/// Short metric-name segment for a recommendation action.
pub(crate) fn action_kind(action: &RecoAction) -> &'static str {
    match action {
        RecoAction::CreateIndex { .. } => "create_index",
        RecoAction::DropIndex { .. } => "drop_index",
    }
}

/// One database under management.
#[derive(Debug)]
pub struct ManagedDb {
    pub db: Database,
    pub settings: DbSettings,
    pub server: ServerSettings,
    pub mi_store: MiSnapshotStore,
    /// When usage observation began (for the drop analyzer's window).
    pub observed_since: Timestamp,
    pub last_analysis: Option<Timestamp>,
}

impl ManagedDb {
    pub fn new(db: Database, settings: DbSettings, server: ServerSettings) -> ManagedDb {
        let observed_since = db.clock().now();
        ManagedDb {
            db,
            settings,
            server,
            mi_store: MiSnapshotStore::new(),
            observed_since,
            last_analysis: None,
        }
    }
}

/// The per-region control plane.
#[derive(Debug)]
pub struct ControlPlane {
    pub store: StateStore,
    pub telemetry: Telemetry,
    /// The shard-owned metrics registry the §8.1 dashboard rolls up.
    pub metrics: MetricsRegistry,
    /// Span collector over the tick pipeline; disabled by default.
    pub tracer: Tracer,
    pub faults: FaultInjector,
    pub policy: PlanePolicy,
    /// The MI low-impact classifier, trained online from validation
    /// outcomes across all managed databases (§5.2).
    pub classifier: ImpactClassifier,
}

impl ControlPlane {
    pub fn new(policy: PlanePolicy) -> ControlPlane {
        ControlPlane {
            store: StateStore::new(),
            telemetry: Telemetry::new(),
            metrics: MetricsRegistry::new(),
            tracer: Tracer::disabled(),
            faults: FaultInjector::disabled(),
            policy,
            classifier: ImpactClassifier::default(),
        }
    }

    pub fn with_faults(mut self, faults: FaultInjector) -> ControlPlane {
        self.faults = faults;
        self
    }

    pub fn with_tracing(mut self) -> ControlPlane {
        self.tracer = Tracer::enabled();
        self
    }

    /// One orchestration pass over one database. Call it periodically
    /// (e.g. hourly) as simulated time advances — or, sparsely, only at
    /// the instants the returned [`WakeSchedule`] marks as due: a pass
    /// where no stage has due work changes no state, emits nothing, and
    /// draws no fault randomness, so skipping it is unobservable.
    ///
    /// Each pass emits one `tick` span with the pipeline stages as
    /// children (when tracing is on), refreshes the
    /// outstanding-recommendation gauges the dashboard reads, and
    /// records the recomputed wake schedule in the journaled store so
    /// crash recovery restores it.
    pub fn tick(&mut self, mdb: &mut ManagedDb) -> WakeSchedule {
        let started = mdb.db.clock().now();
        self.tracer.start("tick", started);
        self.tracer.attr(
            "db_hash",
            format!("{:016x}", crate::telemetry::db_hash(&mdb.db.name)),
        );
        self.maybe_journal_tear(mdb);
        for stage in Stage::ALL {
            self.tracer.start(stage.name(), mdb.db.clock().now());
            stage.run(self, mdb);
            self.tracer.end(mdb.db.clock().now());
        }
        self.refresh_outstanding_gauges();
        self.tracer.end(mdb.db.clock().now());
        let schedule = WakeSchedule::compute(self, mdb);
        self.store.record_schedule(&mdb.db.name, &schedule);
        self.maybe_checkpoint(mdb);
        schedule
    }

    /// End-of-tick compaction check. A skipped (provably idle) tick
    /// appends nothing to the journal, so the trigger cannot fire on it
    /// — sparse and dense replays compact at identical points. The
    /// armed [`FaultPoint::CheckpointTear`] path tears the checkpoint
    /// frame just written and immediately restart-recovers, exercising
    /// the fallback ladder live; an unarmed check draws no randomness.
    fn maybe_checkpoint(&mut self, mdb: &ManagedDb) {
        if !self.store.should_compact(&self.policy.journal) {
            return;
        }
        self.store.compact();
        if self.faults.check(FaultPoint::CheckpointTear).is_some() {
            let now = mdb.db.clock().now();
            let name = mdb.db.name.clone();
            self.store.corrupt_last_checkpoint();
            self.recover_store(&name, now);
        }
    }

    /// Outstanding (Active, awaiting implementation) recommendations by
    /// action — §8.1's backlog lines. Gauges, not counters: they track
    /// the *current* level, re-measured at every tick boundary.
    fn refresh_outstanding_gauges(&mut self) {
        let mut creates = 0i64;
        let mut drops = 0i64;
        for r in self.store.all() {
            if r.state == RecoState::Active {
                match &r.recommendation.action {
                    RecoAction::CreateIndex { .. } => creates += 1,
                    RecoAction::DropIndex { .. } => drops += 1,
                }
            }
        }
        self.metrics.gauge_set("outstanding.create", creates);
        self.metrics.gauge_set("outstanding.drop", drops);
    }

    pub(crate) fn effective_settings(&self, mdb: &ManagedDb) -> (bool, bool) {
        effective(mdb.settings, mdb.server)
    }

    /// Raise an incident through both sinks: the on-call incident stream
    /// and the `incident.raised` dashboard counter.
    pub(crate) fn incident(&mut self, db: &str, summary: String, now: Timestamp) {
        self.telemetry.incident(db, summary, now);
        self.metrics.inc("incident.raised");
    }

    /// A recommendation duplicates an open or recently-succeeded one when
    /// it proposes the same action on the same object.
    pub(crate) fn is_duplicate_reco(&self, db_name: &str, reco: &Recommendation) -> bool {
        self.store.for_database(db_name).any(|r| {
            let same_action = match (&r.recommendation.action, &reco.action) {
                (RecoAction::CreateIndex { def: a }, RecoAction::CreateIndex { def: b }) => {
                    a.table == b.table && a.key_columns == b.key_columns
                }
                (
                    RecoAction::DropIndex { index: a, .. },
                    RecoAction::DropIndex { index: b, .. },
                ) => a == b,
                _ => false,
            };
            same_action
                && (!r.state.is_terminal()
                    || matches!(r.state, RecoState::Success | RecoState::Reverted))
        })
    }

    /// User-initiated application of one recommendation (the portal's
    /// "apply" button) — bypasses the auto-implement setting but is still
    /// validated by the system (§2). Re-records the wake schedule: the
    /// state change happened outside any tick.
    pub fn apply_manually(&mut self, mdb: &mut ManagedDb, id: RecoId) -> bool {
        let Some(r) = self.store.get(id) else {
            return false;
        };
        if r.state != RecoState::Active || r.database != mdb.db.name {
            return false;
        }
        let applied = crate::stages::implement::implement_one(self, mdb, id);
        if applied {
            let schedule = WakeSchedule::compute(self, mdb);
            self.store.record_schedule(&mdb.db.name, &schedule);
        }
        applied
    }

    // ------------------------------------------------------------------
    // Crash recovery
    // ------------------------------------------------------------------

    /// Injected process death mid-journal-write: tear the final record,
    /// then restart-and-recover. Armed via [`FaultPoint::JournalTear`];
    /// a no-op for injectors that never arm it.
    fn maybe_journal_tear(&mut self, mdb: &ManagedDb) {
        if self.faults.check(FaultPoint::JournalTear).is_none() {
            return;
        }
        let now = mdb.db.clock().now();
        let name = mdb.db.name.clone();
        self.store.corrupt_journal_tail();
        self.recover_store(&name, now);
    }

    /// Crash-recover the journaled store, surfacing the outcome through
    /// telemetry: one `StoreRecovered` event, one `JournalEntryTruncated`
    /// per dropped record, one `RecommendationReparked` per mid-flight
    /// recommendation parked back into Retry, and an incident whenever
    /// data was actually lost. Checkpoint outcomes are reported
    /// distinctly: `CheckpointRestored` when recovery started from a
    /// snapshot, `CheckpointFallback` (plus an incident) when a damaged
    /// checkpoint forced a step down the ladder, and one
    /// `JournalFrameCorrupt` (plus an incident) per mid-journal frame
    /// skipped — bit-rot is not the same signal as a torn tail.
    pub fn recover_store(&mut self, db_name: &str, now: Timestamp) -> crate::store::RecoveryReport {
        let report = self.store.crash_and_recover();
        self.telemetry.emit(
            EventKind::StoreRecovered,
            db_name,
            format!("replayed {} entries", report.replayed),
            now,
        );
        for _ in 0..report.truncated {
            self.telemetry
                .emit(EventKind::JournalEntryTruncated, db_name, "", now);
        }
        for id in &report.reparked {
            self.telemetry.emit(
                EventKind::RecommendationReparked,
                db_name,
                format!("{id}"),
                now,
            );
        }
        self.metrics.inc("recovery.runs");
        self.metrics
            .add("recovery.entries_replayed", report.replayed as u64);
        self.metrics
            .add("recovery.entries_truncated", report.truncated as u64);
        self.metrics
            .add("recovery.reparked", report.reparked.len() as u64);
        self.metrics.observe_with(
            "recovery.replayed_per_run",
            report.replayed as u64,
            &crate::metrics::Histogram::count_bounds(),
        );
        self.metrics.observe_with(
            "recovery.frame_reads",
            report.frame_reads as u64,
            &crate::metrics::Histogram::count_bounds(),
        );
        self.metrics.observe_with(
            "recovery.journal_bytes",
            self.store.journal_bytes() as u64,
            &crate::metrics::Histogram::bytes_bounds(),
        );
        if report.checkpoint_used {
            self.telemetry.emit(
                EventKind::CheckpointRestored,
                db_name,
                format!("{} frame reads", report.frame_reads),
                now,
            );
            self.metrics.inc("recovery.from_checkpoint");
        }
        if report.corrupt_mid > 0 {
            for _ in 0..report.corrupt_mid {
                self.telemetry
                    .emit(EventKind::JournalFrameCorrupt, db_name, "", now);
            }
            self.metrics
                .add("recovery.corrupt_frames", report.corrupt_mid as u64);
            self.incident(
                db_name,
                format!(
                    "mid-journal corruption: {} frames skipped (intact records follow them)",
                    report.corrupt_mid
                ),
                now,
            );
        }
        if report.checkpoint_fallback {
            self.telemetry.emit(
                EventKind::CheckpointFallback,
                db_name,
                if report.checkpoint_used {
                    "fell back to previous checkpoint"
                } else {
                    "fell back to full replay"
                },
                now,
            );
            self.metrics.inc("recovery.checkpoint_fallback");
            self.incident(
                db_name,
                format!(
                    "checkpoint torn/corrupt: recovery fell back to {} (lossless)",
                    if report.checkpoint_used {
                        "the previous checkpoint"
                    } else {
                        "full replay"
                    }
                ),
                now,
            );
        }
        if report.torn_tail {
            self.metrics.inc("recovery.torn_tail");
            self.incident(
                db_name,
                format!(
                    "journal tail torn: {} entries lost, {} recommendations re-parked",
                    report.truncated,
                    report.reparked.len()
                ),
                now,
            );
        }
        report
    }
}
