//! Anonymized telemetry (§1.2, §8.3).
//!
//! Engineers operating the service never see customer data; health and
//! debugging flow through anonymized, aggregated events. This module is
//! that pipeline: typed events with **no query text or data values**,
//! counters, and an incident stream for the on-call path.

use sqlmini::clock::Timestamp;
use std::collections::BTreeMap;

/// Event kinds emitted by the control plane.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum EventKind {
    AnalysisStarted,
    AnalysisCompleted,
    RecommendationCreated,
    RecommendationExpired,
    ImplementStarted,
    ImplementSucceeded,
    ImplementFailedTransient,
    ImplementFailedFatal,
    ValidationStarted,
    ValidationImproved,
    ValidationInconclusive,
    ValidationRegressed,
    ValidationNoData,
    RevertStarted,
    RevertSucceeded,
    RevertFailedTransient,
    DropLockTimedOut,
    IncidentRaised,
    DtaSessionAborted,
    /// The state store crashed and was rebuilt from its journal.
    StoreRecovered,
    /// A torn/corrupt journal record was dropped during recovery.
    JournalEntryTruncated,
    /// A mid-flight recommendation was re-parked into Retry by recovery.
    RecommendationReparked,
    /// A retry was deferred because its backoff window had not elapsed.
    RetryBackoffWait,
    /// A tenant tripped the fleet driver's fault circuit-breaker.
    TenantQuarantined,
    /// A tenant worker panicked and was isolated by the supervisor.
    TenantPoisoned,
    /// Recovery restored state from a checkpoint frame (plus tail
    /// replay) instead of replaying the whole journal.
    CheckpointRestored,
    /// A torn/corrupt checkpoint made recovery step down the fallback
    /// ladder (previous checkpoint, or full replay).
    CheckpointFallback,
    /// An invalid frame was found *mid*-journal (an intact frame
    /// follows it) and skipped — bit-rot, not a torn tail.
    JournalFrameCorrupt,
    /// A policy flight started over a sampled tenant cohort (§7).
    FlightStarted,
    /// One cohort tenant's A/B verdict was recorded.
    FlightTenantVerdict,
    /// The flight's candidate policy shipped region-wide.
    FlightShipped,
    /// The flight was aborted (regression or insufficient evidence).
    FlightAborted,
}

/// One anonymized event: kind + database *hash* + time. The database name
/// is folded to a stable hash so dashboards can correlate events without
/// carrying tenant identity.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Event {
    pub at: Timestamp,
    pub kind: EventKind,
    pub db_hash: u64,
    /// Small cardinality detail (state names, error classes) — never
    /// query text or data.
    pub detail: String,
}

/// Stable anonymizing hash of a database name — the only tenant
/// identifier that ever leaves a shard (events, incidents, span attrs).
pub fn db_hash(name: &str) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    h.finish()
}

/// An incident requiring (simulated) on-call attention.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Incident {
    pub at: Timestamp,
    pub db_hash: u64,
    pub summary: String,
}

/// The telemetry sink.
#[derive(Debug, Default)]
pub struct Telemetry {
    counters: BTreeMap<EventKind, u64>,
    events: Vec<Event>,
    incidents: Vec<Incident>,
    /// Cap on retained raw events (aggregation survives unboundedly).
    retain_events: usize,
}

impl Telemetry {
    pub fn new() -> Telemetry {
        Telemetry {
            retain_events: 100_000,
            ..Telemetry::default()
        }
    }

    pub fn emit(&mut self, kind: EventKind, db: &str, detail: impl Into<String>, at: Timestamp) {
        *self.counters.entry(kind).or_default() += 1;
        self.events.push(Event {
            at,
            kind,
            db_hash: db_hash(db),
            detail: detail.into(),
        });
        if self.events.len() > self.retain_events {
            let excess = self.events.len() - self.retain_events;
            self.events.drain(..excess);
        }
    }

    pub fn incident(&mut self, db: &str, summary: impl Into<String>, at: Timestamp) {
        let summary = summary.into();
        self.emit(EventKind::IncidentRaised, db, summary.clone(), at);
        self.incidents.push(Incident {
            at,
            db_hash: db_hash(db),
            summary,
        });
    }

    pub fn count(&self, kind: EventKind) -> u64 {
        self.counters.get(&kind).copied().unwrap_or(0)
    }

    pub fn counters(&self) -> &BTreeMap<EventKind, u64> {
        &self.counters
    }

    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The operational revert rate: reverts ÷ implemented actions (§8.1
    /// reports ~11%).
    pub fn revert_rate(&self) -> f64 {
        let implemented = self.count(EventKind::ImplementSucceeded);
        if implemented == 0 {
            return 0.0;
        }
        self.count(EventKind::RevertSucceeded) as f64 / implemented as f64
    }

    /// Merge another telemetry sink into this one (cross-region
    /// aggregation for dashboards, §8.3).
    ///
    /// Unlike [`Telemetry::emit`], merging does **not** enforce the
    /// event-retention cap — the fleet driver's quiesce merge keeps
    /// every shard's events in fleet order. Accumulators that fold an
    /// unbounded stream of shards (the million-tenant region driver)
    /// must call [`Telemetry::retain_recent`] between merges to stay
    /// bounded; counters aggregate exactly either way.
    pub fn merge(&mut self, other: &Telemetry) {
        for (k, v) in &other.counters {
            *self.counters.entry(*k).or_default() += v;
        }
        self.events.extend(other.events.iter().cloned());
        self.incidents.extend(other.incidents.iter().cloned());
    }

    /// Merge a bare counters map (a shard's aggregate row — see
    /// [`crate::region::GlobalDashboard::ingest_shard`]). Counter-only
    /// by design: shard rows carry no raw events across the management
    /// boundary.
    pub fn merge_counters(&mut self, counters: &BTreeMap<EventKind, u64>) {
        for (k, v) in counters {
            *self.counters.entry(*k).or_default() += v;
        }
    }

    /// Drop all but the most recent `n` raw events and incidents —
    /// the same policy [`Telemetry::emit`] applies continuously, exposed
    /// for merge-heavy accumulators whose event memory must stay bounded
    /// no matter how many shards fold in. Counters (the canonical
    /// surface) are never touched.
    pub fn retain_recent(&mut self, n: usize) {
        if self.events.len() > n {
            let excess = self.events.len() - n;
            self.events.drain(..excess);
        }
        if self.incidents.len() > n {
            let excess = self.incidents.len() - n;
            self.incidents.drain(..excess);
        }
    }

    /// Export counters as a JSON object (dashboard feed).
    /// Merge many per-shard sinks into one — the fleet driver's quiesce
    /// step. Event order follows iteration order, so callers pass
    /// shards in fleet order to keep the result deterministic.
    pub fn merged<'a>(shards: impl IntoIterator<Item = &'a Telemetry>) -> Telemetry {
        let mut out = Telemetry::new();
        for shard in shards {
            out.merge(shard);
        }
        out
    }

    pub fn export_json(&self) -> String {
        let m: BTreeMap<String, u64> = self
            .counters
            .iter()
            .map(|(k, v)| (format!("{k:?}"), *v))
            .collect();
        serde_json::to_string_pretty(&m).expect("counters serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_events() {
        let mut t = Telemetry::new();
        t.emit(EventKind::ImplementSucceeded, "db1", "", Timestamp(1));
        t.emit(EventKind::ImplementSucceeded, "db2", "", Timestamp(2));
        t.emit(EventKind::RevertSucceeded, "db1", "", Timestamp(3));
        assert_eq!(t.count(EventKind::ImplementSucceeded), 2);
        assert_eq!(t.events().len(), 3);
        assert!((t.revert_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn anonymization_hashes_names() {
        let mut t = Telemetry::new();
        t.emit(
            EventKind::AnalysisStarted,
            "secret_customer_db",
            "",
            Timestamp(0),
        );
        let e = &t.events()[0];
        assert_ne!(e.db_hash, 0);
        assert!(!format!("{e:?}").contains("secret_customer_db"));
        // Stable hash: same name, same hash.
        t.emit(
            EventKind::AnalysisStarted,
            "secret_customer_db",
            "",
            Timestamp(1),
        );
        assert_eq!(t.events()[0].db_hash, t.events()[1].db_hash);
    }

    #[test]
    fn incidents_tracked() {
        let mut t = Telemetry::new();
        t.incident("db9", "stuck in Implementing for 3 days", Timestamp(5));
        assert_eq!(t.incidents().len(), 1);
        assert_eq!(t.count(EventKind::IncidentRaised), 1);
    }

    #[test]
    fn merge_aggregates() {
        let mut a = Telemetry::new();
        let mut b = Telemetry::new();
        a.emit(EventKind::RecommendationCreated, "x", "", Timestamp(0));
        b.emit(EventKind::RecommendationCreated, "y", "", Timestamp(0));
        b.incident("y", "oops", Timestamp(1));
        a.merge(&b);
        assert_eq!(a.count(EventKind::RecommendationCreated), 2);
        assert_eq!(a.incidents().len(), 1);
    }

    #[test]
    fn export_is_json() {
        let mut t = Telemetry::new();
        t.emit(EventKind::ValidationImproved, "db", "", Timestamp(0));
        let j = t.export_json();
        let parsed: BTreeMap<String, u64> = serde_json::from_str(&j).unwrap();
        assert_eq!(parsed.get("ValidationImproved"), Some(&1));
    }

    #[test]
    fn event_retention_cap() {
        let mut t = Telemetry::new();
        t.retain_events = 10;
        for i in 0..25 {
            t.emit(EventKind::AnalysisStarted, "db", "", Timestamp(i));
        }
        assert_eq!(t.events().len(), 10);
        assert_eq!(
            t.count(EventKind::AnalysisStarted),
            25,
            "counters unbounded"
        );
        assert_eq!(t.events()[0].at, Timestamp(15));
    }
}
