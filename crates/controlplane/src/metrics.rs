//! Fleet metrics: counters, gauges, and fixed-bucket histograms.
//!
//! The production service's dashboards (§8.1) aggregate per-database
//! telemetry into fleet-wide operational statistics — outstanding
//! recommendation backlogs, weekly create/drop throughput, revert rates.
//! This module is the registry those numbers flow through.
//!
//! **Lock-free on the hot path.** A registry is *shard-owned*: like the
//! per-tenant [`StateStore`](crate::store::StateStore), each tenant's
//! control plane owns exactly one `MetricsRegistry` and mutates it with
//! plain integer arithmetic — no atomics, no mutexes, no contention.
//! Cross-tenant aggregation happens only at quiesce, by [`merging`]
//! shards **in fleet order**, so a parallel fleet run rolls up to the
//! byte-identical registry a serial run produces.
//!
//! **Merge is a commutative monoid.** Counters and gauges merge by
//! summation; histograms merge bucket-wise (bounds must agree). That
//! makes `merge` associative and commutative with [`MetricsRegistry::default`]
//! as identity — the property test in `tests/observability.rs` pins this,
//! because it is what licenses merging shards in any grouping.
//!
//! [`merging`]: MetricsRegistry::merge

use std::collections::BTreeMap;

/// A fixed-bucket histogram over `u64` observations (durations in
/// simulated milliseconds, counts, sizes).
///
/// `bounds` are inclusive upper bounds of the first `bounds.len()`
/// buckets; one implicit overflow bucket catches everything above the
/// last bound, so `counts.len() == bounds.len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Histogram {
    pub fn new(bounds: Vec<u64>) -> Histogram {
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            sum: 0,
            count: 0,
        }
    }

    /// Default bounds for simulated-time observations: 1s … 1w in ms.
    pub fn time_bounds() -> Vec<u64> {
        vec![
            1_000,
            10_000,
            60_000,
            600_000,
            3_600_000,
            10_800_000,
            43_200_000,
            86_400_000,
            259_200_000,
            604_800_000,
        ]
    }

    /// Default bounds for small-count observations (attempts, entries).
    pub fn count_bounds() -> Vec<u64> {
        vec![0, 1, 2, 5, 10, 20, 50, 100, 1_000]
    }

    /// Default bounds for byte-size observations: 1 KiB … 256 MiB.
    pub fn bytes_bounds() -> Vec<u64> {
        vec![
            1_024,
            16_384,
            65_536,
            262_144,
            1_048_576,
            16_777_216,
            268_435_456,
        ]
    }

    pub fn observe(&mut self, value: u64) {
        let bucket = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.sum = self.sum.saturating_add(value);
        self.count += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`u64::MAX` when it falls in the overflow bucket). Coarse by
    /// construction — dashboards need bucket resolution, not exactness.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Bucket-wise merge. Panics when bucket bounds disagree — shards of
    /// one fleet always configure a metric identically, so a mismatch is
    /// a programming error, not data.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merge requires identical bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.count += other.count;
    }
}

/// The shard-owned metrics registry: monotonic counters, gauges, and
/// fixed-bucket histograms, keyed by dotted metric names
/// (`"implement.succeeded.create_index"`). `BTreeMap` keys make every
/// iteration — and therefore every export — deterministic.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increment a monotonic counter by 1.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increment a monotonic counter by `delta`. Allocates the key only
    /// on first touch; steady-state increments are a map lookup plus an
    /// integer add.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge. Gauges merge by **summation** across shards (each
    /// tenant reports its own level; the fleet value is the total), so a
    /// shard sets its local level and never another shard's.
    pub fn gauge_set(&mut self, name: &str, value: i64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    pub fn gauge_add(&mut self, name: &str, delta: i64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g += delta;
        } else {
            self.gauges.insert(name.to_string(), delta);
        }
    }

    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Record one observation into the named histogram, creating it with
    /// `bounds` on first touch. Later observations ignore `bounds` (the
    /// first registration wins), matching the shard-identical-config
    /// assumption `merge` asserts.
    pub fn observe_with(&mut self, name: &str, value: u64, bounds: &[u64]) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::new(bounds.to_vec());
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Record a simulated-duration observation (default time buckets).
    pub fn observe_time(&mut self, name: &str, millis: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(millis);
        } else {
            let mut h = Histogram::new(Histogram::time_bounds());
            h.observe(millis);
            self.histograms.insert(name.to_string(), h);
        }
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    pub fn gauges(&self) -> &BTreeMap<String, i64> {
        &self.gauges
    }

    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }

    /// Counters matching `prefix`, with the prefix stripped — the
    /// dashboard's breakdown views (`"revert.cause."` → cause → count).
    pub fn breakdown(&self, prefix: &str) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter_map(|(k, v)| k.strip_prefix(prefix).map(|rest| (rest.to_string(), *v)))
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold another shard into this one. Counters and gauges add;
    /// histograms merge bucket-wise. Associative and commutative, with
    /// the empty registry as identity.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
        for (k, v) in &other.gauges {
            self.gauge_add(k, *v);
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
    }

    /// Merge many shard registries — the fleet driver's quiesce step.
    /// Because `merge` is order-insensitive, any iteration order yields
    /// the same registry; fleet order is used by convention.
    pub fn merged<'a>(shards: impl IntoIterator<Item = &'a MetricsRegistry>) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for shard in shards {
            out.merge(shard);
        }
        out
    }

    /// Deterministic JSON export (the dashboard feed).
    pub fn export_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("registry serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x");
        m.add("x", 4);
        m.inc("y");
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counter("y"), 1);
    }

    #[test]
    fn gauges_set_and_add() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("outstanding", 7);
        m.gauge_set("outstanding", 3);
        m.gauge_add("outstanding", -1);
        assert_eq!(m.gauge("outstanding"), 2);
        assert_eq!(m.gauge("missing"), 0);
    }

    #[test]
    fn histogram_buckets_sum_and_overflow() {
        let mut h = Histogram::new(vec![10, 100]);
        h.observe(5);
        h.observe(10); // inclusive upper bound
        h.observe(50);
        h.observe(1_000); // overflow
        assert_eq!(h.bucket_counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1_065);
        assert!((h.mean() - 266.25).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantile_bound_is_bucket_resolution() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        for v in [1, 2, 3, 50, 60, 70, 80, 500, 600, 5000] {
            h.observe(v);
        }
        assert_eq!(h.quantile_bound(0.0), 10);
        assert_eq!(h.quantile_bound(0.5), 100);
        assert_eq!(h.quantile_bound(0.9), 1000);
        assert_eq!(h.quantile_bound(1.0), u64::MAX);
        assert_eq!(Histogram::new(vec![1]).quantile_bound(0.5), 0);
    }

    #[test]
    #[should_panic(expected = "identical bucket bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(vec![1, 2]);
        let b = Histogram::new(vec![1, 3]);
        a.merge(&b);
    }

    #[test]
    fn merge_sums_every_kind() {
        let mut a = MetricsRegistry::new();
        a.inc("c");
        a.gauge_set("g", 5);
        a.observe_with("h", 3, &[10]);
        let mut b = MetricsRegistry::new();
        b.add("c", 2);
        b.inc("only_b");
        b.gauge_set("g", -2);
        b.observe_with("h", 30, &[10]);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("only_b"), 1);
        assert_eq!(a.gauge("g"), 3);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.bucket_counts(), &[1, 1]);
    }

    #[test]
    fn merged_identity_and_fleet_fold() {
        let mut a = MetricsRegistry::new();
        a.inc("x");
        let b = MetricsRegistry::new();
        let folded = MetricsRegistry::merged([&a, &b]);
        assert_eq!(folded, a, "empty registry is the merge identity");
    }

    #[test]
    fn breakdown_strips_prefix() {
        let mut m = MetricsRegistry::new();
        m.add("revert.cause.regression", 4);
        m.add("revert.cause.manual", 1);
        m.inc("revert.succeeded");
        let causes = m.breakdown("revert.cause.");
        assert_eq!(causes.len(), 2);
        assert_eq!(causes.get("regression"), Some(&4));
        assert_eq!(causes.get("manual"), Some(&1));
    }

    #[test]
    fn export_json_round_trips() {
        let mut m = MetricsRegistry::new();
        m.add("a.b", 2);
        m.gauge_set("g", -7);
        m.observe_time("t", 5_000);
        let j = m.export_json();
        let back: MetricsRegistry = serde_json::from_str(&j).unwrap();
        assert_eq!(back, m);
    }
}
