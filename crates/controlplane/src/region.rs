//! Per-region deployment and cross-region aggregation (§3, §8.3).
//!
//! One auto-indexing service instance manages all databases in a region —
//! the compliance boundary: state and telemetry never leave it. What
//! *does* cross regions is anonymized aggregate telemetry, merged into
//! the global dashboards on-call engineers use.

use crate::metrics::MetricsRegistry;
use crate::plane::{ControlPlane, ManagedDb, PlanePolicy};
use crate::telemetry::{EventKind, Telemetry};
use sqlmini::clock::Duration;
use std::collections::BTreeMap;

/// One region: a control plane plus its managed databases.
pub struct Region {
    pub name: String,
    pub plane: ControlPlane,
    databases: BTreeMap<String, ManagedDb>,
}

impl Region {
    pub fn new(name: impl Into<String>, policy: PlanePolicy) -> Region {
        Region {
            name: name.into(),
            plane: ControlPlane::new(policy),
            databases: BTreeMap::new(),
        }
    }

    /// Register a database with this region.
    pub fn adopt(&mut self, mdb: ManagedDb) {
        self.databases.insert(mdb.db.name.clone(), mdb);
    }

    pub fn database_mut(&mut self, name: &str) -> Option<&mut ManagedDb> {
        self.databases.get_mut(name)
    }

    pub fn databases(&self) -> impl Iterator<Item = &ManagedDb> {
        self.databases.values()
    }

    pub fn n_databases(&self) -> usize {
        self.databases.len()
    }

    /// One orchestration pass over every managed database.
    pub fn tick_all(&mut self) {
        // Drain-and-reinsert so the plane can borrow &mut self.plane and
        // each database independently.
        let names: Vec<String> = self.databases.keys().cloned().collect();
        for name in names {
            if let Some(mut mdb) = self.databases.remove(&name) {
                self.plane.tick(&mut mdb);
                self.databases.insert(name, mdb);
            }
        }
    }

    /// The region's exportable (anonymized) telemetry.
    pub fn export_telemetry(&self) -> &Telemetry {
        &self.plane.telemetry
    }

    /// The region's metrics registry (counters/gauges/histograms).
    pub fn export_metrics(&self) -> &MetricsRegistry {
        &self.plane.metrics
    }
}

/// The §8.1 operational-statistics table, rolled up from a merged
/// [`MetricsRegistry`]. One snapshot summarizes a fleet (or region) at a
/// point in simulated time: backlog levels, implementation throughput,
/// revert rate with cause/source breakdowns, and chaos counters.
///
/// Built purely from the registry plus the simulated horizon, so a
/// parallel fleet run — whose merged registry is byte-identical to the
/// serial run's — yields a byte-identical snapshot and rendering.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DashboardSnapshot {
    /// Databases the registry saw (`fleet.tenants` gauge).
    pub databases: i64,
    /// Databases with auto-implementation enabled (`fleet.auto_tenants`).
    pub auto_databases: i64,
    /// Simulated time the metrics cover, in milliseconds.
    pub sim_millis: u64,
    /// Backlog: Active CREATE INDEX recommendations awaiting action.
    pub outstanding_creates: i64,
    /// Backlog: Active DROP INDEX recommendations awaiting action.
    pub outstanding_drops: i64,
    pub implemented_creates: u64,
    pub implemented_drops: u64,
    pub reverts: u64,
    /// Reverts by trigger (`revert.cause.*`).
    pub revert_causes: BTreeMap<String, u64>,
    /// Reverts by originating recommender (`revert.source.*`).
    pub reverts_by_source: BTreeMap<String, u64>,
    pub expired: u64,
    /// Queries measured in both the first and last observation windows.
    pub queries_measured: u64,
    /// Of those, queries whose mean CPU improved by ≥2× (§8.1).
    pub queries_improved_2x: u64,
    /// Databases whose fixed-count CPU cost at least halved (§8.1).
    pub dbs_cpu_halved: u64,
    pub recoveries: u64,
    pub quarantines: u64,
    pub poisoned: u64,
    pub incidents: u64,
    /// DTA sessions run (`dta.sessions`) / aborted on budget.
    pub dta_sessions: u64,
    pub dta_sessions_aborted: u64,
    /// What-if optimizer calls DTA actually issued (`dta.whatif.issued`).
    pub what_if_issued: u64,
    /// What-if calls answered from the cost cache (`dta.whatif.saved.cache`).
    pub what_if_saved_cache: u64,
    /// What-if calls skipped by relevance pruning (`dta.whatif.saved.pruning`).
    pub what_if_saved_pruning: u64,
    /// Control-plane passes the fleet scheduler ran (0 when the snapshot
    /// was built without scheduler context — see
    /// [`DashboardSnapshot::with_scheduler`]).
    pub sched_ticks_executed: u64,
    /// Control-plane passes the sparse scheduler proved unnecessary.
    pub sched_ticks_skipped: u64,
    /// Plan-selection cache hits across the fleet's tenant engines (0
    /// when built without driver context — see
    /// [`DashboardSnapshot::with_plan_cache`]).
    pub plan_cache_hits: u64,
    /// Plan-selection cache misses (compilations actually run).
    pub plan_cache_misses: u64,
    /// Cached plans discarded because the catalog fingerprint moved.
    pub plan_cache_invalidations: u64,
    /// Checkpoint frames written by journal compaction (0 when built
    /// without driver context — see [`DashboardSnapshot::with_journal`]).
    pub checkpoints_written: u64,
    /// Journal frames truncated away by compaction.
    pub frames_compacted: u64,
    /// Journal bytes reclaimed by compaction.
    pub journal_bytes_reclaimed: u64,
    /// Recoveries that stepped down the checkpoint fallback ladder.
    pub fallback_recoveries: u64,
    /// Tenants sampled into the policy-flight cohort (0 when the
    /// snapshot was built without flight context — see
    /// [`DashboardSnapshot::with_flight`]).
    pub flight_cohort: u64,
    /// Cohort tenants where the candidate policy measurably improved.
    pub flight_improved: u64,
    /// Cohort tenants where the candidate policy measurably regressed.
    pub flight_regressed: u64,
    /// Cohort tenants with no significant difference.
    pub flight_washed: u64,
    /// Cohort tenants discarded by the divergence guard.
    pub flight_discarded: u64,
    /// The region-level flight decision ("ship" / "abort"; empty when no
    /// flight context was attached).
    pub flight_verdict: String,
}

impl DashboardSnapshot {
    /// Roll a merged registry up into the ops table.
    pub fn from_metrics(metrics: &MetricsRegistry, sim_time: Duration) -> DashboardSnapshot {
        DashboardSnapshot {
            databases: metrics.gauge("fleet.tenants"),
            auto_databases: metrics.gauge("fleet.auto_tenants"),
            sim_millis: sim_time.millis(),
            outstanding_creates: metrics.gauge("outstanding.create"),
            outstanding_drops: metrics.gauge("outstanding.drop"),
            implemented_creates: metrics.counter("implement.succeeded.create_index"),
            implemented_drops: metrics.counter("implement.succeeded.drop_index"),
            reverts: metrics.counter("revert.succeeded"),
            revert_causes: metrics.breakdown("revert.cause."),
            reverts_by_source: metrics.breakdown("revert.source."),
            expired: metrics.counter("reco.expired"),
            queries_measured: metrics.counter("workload.queries_measured"),
            queries_improved_2x: metrics.counter("workload.queries_improved_2x"),
            dbs_cpu_halved: metrics.counter("workload.dbs_cpu_halved"),
            recoveries: metrics.counter("recovery.runs"),
            quarantines: metrics.counter("fleet.quarantines"),
            poisoned: metrics.counter("fleet.poisoned"),
            incidents: metrics.counter("incident.raised"),
            dta_sessions: metrics.counter("dta.sessions"),
            dta_sessions_aborted: metrics.counter("dta.sessions.aborted"),
            what_if_issued: metrics.counter("dta.whatif.issued"),
            what_if_saved_cache: metrics.counter("dta.whatif.saved.cache"),
            what_if_saved_pruning: metrics.counter("dta.whatif.saved.pruning"),
            sched_ticks_executed: 0,
            sched_ticks_skipped: 0,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            plan_cache_invalidations: 0,
            checkpoints_written: 0,
            frames_compacted: 0,
            journal_bytes_reclaimed: 0,
            fallback_recoveries: 0,
            flight_cohort: 0,
            flight_improved: 0,
            flight_regressed: 0,
            flight_washed: 0,
            flight_discarded: 0,
            flight_verdict: String::new(),
        }
    }

    /// Attach fleet-scheduler counters (kept outside the canonical
    /// merged registry, so they arrive via this builder rather than
    /// `from_metrics`). Gates the "fleet scheduler" render block.
    pub fn with_scheduler(mut self, executed: u64, skipped: u64) -> DashboardSnapshot {
        self.sched_ticks_executed = executed;
        self.sched_ticks_skipped = skipped;
        self
    }

    /// Attach plan-selection cache counters (non-canonical driver
    /// bookkeeping, like the scheduler counters, so they arrive via this
    /// builder rather than `from_metrics`). Gates the "plan cache"
    /// render block.
    pub fn with_plan_cache(
        mut self,
        hits: u64,
        misses: u64,
        invalidations: u64,
    ) -> DashboardSnapshot {
        self.plan_cache_hits = hits;
        self.plan_cache_misses = misses;
        self.plan_cache_invalidations = invalidations;
        self
    }

    /// Attach journal/recovery counters (non-canonical driver
    /// bookkeeping — compaction changes journal geometry without
    /// changing canonical state). Gates the "journal / recovery"
    /// render block.
    pub fn with_journal(
        mut self,
        checkpoints_written: u64,
        frames_compacted: u64,
        bytes_reclaimed: u64,
        fallback_recoveries: u64,
    ) -> DashboardSnapshot {
        self.checkpoints_written = checkpoints_written;
        self.frames_compacted = frames_compacted;
        self.journal_bytes_reclaimed = bytes_reclaimed;
        self.fallback_recoveries = fallback_recoveries;
        self
    }

    /// Attach policy-flight verdict counters (flight state is journaled
    /// store state, not merged metrics, so it arrives via this builder
    /// rather than `from_metrics`). Gates the "flight" render block.
    pub fn with_flight(
        mut self,
        cohort: u64,
        improved: u64,
        regressed: u64,
        washed: u64,
        discarded: u64,
        verdict: impl Into<String>,
    ) -> DashboardSnapshot {
        self.flight_cohort = cohort;
        self.flight_improved = improved;
        self.flight_regressed = regressed;
        self.flight_washed = washed;
        self.flight_discarded = discarded;
        self.flight_verdict = verdict.into();
        self
    }

    /// Fraction of statement executions served by a memoized plan.
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.plan_cache_hits as f64 / total as f64
    }

    /// Fraction of scheduled control passes skipped as provably idle.
    pub fn sched_skip_fraction(&self) -> f64 {
        let total = self.sched_ticks_executed + self.sched_ticks_skipped;
        if total == 0 {
            return 0.0;
        }
        self.sched_ticks_skipped as f64 / total as f64
    }

    /// Fraction of DTA what-if lookups served by the cost cache.
    pub fn what_if_cache_hit_rate(&self) -> f64 {
        let lookups = self.what_if_saved_cache + self.what_if_issued;
        if lookups == 0 {
            return 0.0;
        }
        self.what_if_saved_cache as f64 / lookups as f64
    }

    /// Fraction of would-be what-if calls avoided (cache + pruning).
    pub fn what_if_saved_fraction(&self) -> f64 {
        let saved = self.what_if_saved_cache + self.what_if_saved_pruning;
        let total = saved + self.what_if_issued;
        if total == 0 {
            return 0.0;
        }
        saved as f64 / total as f64
    }

    /// Fraction of databases with auto-implementation on (§8.1 reports
    /// roughly a quarter of the fleet).
    pub fn auto_fraction(&self) -> f64 {
        if self.databases <= 0 {
            return 0.0;
        }
        self.auto_databases as f64 / self.databases as f64
    }

    fn sim_weeks(&self) -> f64 {
        self.sim_millis as f64 / Duration::from_days(7).millis() as f64
    }

    /// Implemented creates per simulated week.
    pub fn weekly_creates(&self) -> f64 {
        let w = self.sim_weeks();
        if w <= 0.0 {
            return 0.0;
        }
        self.implemented_creates as f64 / w
    }

    /// Implemented drops per simulated week.
    pub fn weekly_drops(&self) -> f64 {
        let w = self.sim_weeks();
        if w <= 0.0 {
            return 0.0;
        }
        self.implemented_drops as f64 / w
    }

    /// Reverts ÷ implemented actions (§8.1 reports ~11%).
    pub fn revert_rate(&self) -> f64 {
        let implemented = self.implemented_creates + self.implemented_drops;
        if implemented == 0 {
            return 0.0;
        }
        self.reverts as f64 / implemented as f64
    }

    /// Outstanding drops per outstanding create (§8.1: drop backlog
    /// dwarfs the create backlog, ~3.4M vs ~250K).
    pub fn drop_backlog_ratio(&self) -> f64 {
        if self.outstanding_creates <= 0 {
            return 0.0;
        }
        self.outstanding_drops as f64 / self.outstanding_creates as f64
    }

    /// Render the §8.1 ops table. Pure function of the snapshot —
    /// byte-identical across runs that produced equal snapshots.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== operational statistics (\u{a7}8.1) ==\n");
        out.push_str(&format!(
            "databases under management      {:>8}\n",
            self.databases
        ));
        out.push_str(&format!(
            "  auto-implement enabled        {:>8}  ({:.1}% of fleet)\n",
            self.auto_databases,
            self.auto_fraction() * 100.0
        ));
        out.push_str(&format!(
            "simulated horizon               {:>8.2} weeks\n",
            self.sim_weeks()
        ));
        out.push_str("outstanding recommendations\n");
        out.push_str(&format!(
            "  CREATE INDEX                  {:>8}\n",
            self.outstanding_creates
        ));
        out.push_str(&format!(
            "  DROP INDEX                    {:>8}  ({:.1}x create backlog)\n",
            self.outstanding_drops,
            self.drop_backlog_ratio()
        ));
        out.push_str("implemented actions\n");
        out.push_str(&format!(
            "  creates                       {:>8}  ({:.2}/week)\n",
            self.implemented_creates,
            self.weekly_creates()
        ));
        out.push_str(&format!(
            "  drops                         {:>8}  ({:.2}/week)\n",
            self.implemented_drops,
            self.weekly_drops()
        ));
        out.push_str(&format!(
            "reverted actions                {:>8}  ({:.1}% of implemented)\n",
            self.reverts,
            self.revert_rate() * 100.0
        ));
        for (cause, n) in &self.revert_causes {
            out.push_str(&format!("  cause {cause:<24}{n:>8}\n"));
        }
        for (source, n) in &self.reverts_by_source {
            out.push_str(&format!("  source {source:<23}{n:>8}\n"));
        }
        out.push_str(&format!(
            "expired recommendations         {:>8}\n",
            self.expired
        ));
        out.push_str("workload impact\n");
        out.push_str(&format!(
            "  queries improved >=2x         {:>8}  (of {} measured)\n",
            self.queries_improved_2x, self.queries_measured
        ));
        out.push_str(&format!(
            "  databases with CPU halved     {:>8}\n",
            self.dbs_cpu_halved
        ));
        if self.dta_sessions > 0 {
            out.push_str("DTA what-if budget (\u{a7}5.3.1)\n");
            out.push_str(&format!(
                "  sessions                      {:>8}  ({} aborted on budget)\n",
                self.dta_sessions, self.dta_sessions_aborted
            ));
            out.push_str(&format!(
                "  optimizer calls issued        {:>8}\n",
                self.what_if_issued
            ));
            out.push_str(&format!(
                "  calls saved (cache/pruning)   {:>8}  ({} / {}, {:.1}% avoided, hit rate {:.1}%)\n",
                self.what_if_saved_cache + self.what_if_saved_pruning,
                self.what_if_saved_cache,
                self.what_if_saved_pruning,
                self.what_if_saved_fraction() * 100.0,
                self.what_if_cache_hit_rate() * 100.0
            ));
        }
        if self.sched_ticks_executed + self.sched_ticks_skipped > 0 {
            out.push_str("fleet scheduler\n");
            out.push_str(&format!(
                "  control passes executed       {:>8}\n",
                self.sched_ticks_executed
            ));
            out.push_str(&format!(
                "  control passes skipped        {:>8}  ({:.1}% provably idle)\n",
                self.sched_ticks_skipped,
                self.sched_skip_fraction() * 100.0
            ));
        }
        if self.plan_cache_hits + self.plan_cache_misses > 0 {
            out.push_str("plan cache\n");
            out.push_str(&format!(
                "  hits                          {:>8}  ({:.1}% hit rate)\n",
                self.plan_cache_hits,
                self.plan_cache_hit_rate() * 100.0
            ));
            out.push_str(&format!(
                "  misses (compilations)         {:>8}\n",
                self.plan_cache_misses
            ));
            out.push_str(&format!(
                "  invalidations                 {:>8}\n",
                self.plan_cache_invalidations
            ));
        }
        if self.checkpoints_written + self.fallback_recoveries > 0 {
            out.push_str("journal / recovery\n");
            out.push_str(&format!(
                "  checkpoints written           {:>8}\n",
                self.checkpoints_written
            ));
            out.push_str(&format!(
                "  frames compacted              {:>8}\n",
                self.frames_compacted
            ));
            out.push_str(&format!(
                "  bytes reclaimed               {:>8}\n",
                self.journal_bytes_reclaimed
            ));
            out.push_str(&format!(
                "  fallback recoveries           {:>8}\n",
                self.fallback_recoveries
            ));
        }
        if self.flight_cohort > 0 || !self.flight_verdict.is_empty() {
            out.push_str("flight (\u{a7}7 policy A/B)\n");
            out.push_str(&format!(
                "  cohort tenants                {:>8}\n",
                self.flight_cohort
            ));
            out.push_str(&format!(
                "  improved                      {:>8}\n",
                self.flight_improved
            ));
            out.push_str(&format!(
                "  regressed                     {:>8}\n",
                self.flight_regressed
            ));
            out.push_str(&format!(
                "  wash                          {:>8}\n",
                self.flight_washed
            ));
            out.push_str(&format!(
                "  discarded (divergence)        {:>8}\n",
                self.flight_discarded
            ));
            out.push_str(&format!(
                "  verdict                       {:>8}\n",
                self.flight_verdict
            ));
        }
        out.push_str(&format!(
            "chaos: recoveries {} / quarantines {} / poisoned {} / incidents {}\n",
            self.recoveries, self.quarantines, self.poisoned, self.incidents
        ));
        out
    }
}

/// The global dashboard: merged counters across regions, health rollups,
/// and the fleet-level figures §8.1 reports.
#[derive(Debug, Default)]
pub struct GlobalDashboard {
    merged: Telemetry,
    metrics: MetricsRegistry,
    per_region: BTreeMap<String, BTreeMap<EventKind, u64>>,
}

impl GlobalDashboard {
    pub fn new() -> GlobalDashboard {
        GlobalDashboard {
            merged: Telemetry::new(),
            metrics: MetricsRegistry::new(),
            per_region: BTreeMap::new(),
        }
    }

    /// Ingest one region's telemetry snapshot.
    pub fn ingest(&mut self, region: &Region) {
        self.merged.merge(region.export_telemetry());
        self.metrics.merge(region.export_metrics());
        self.per_region.insert(
            region.name.clone(),
            region.export_telemetry().counters().clone(),
        );
    }

    /// Ingest one shard's aggregate row from a sharded region run: its
    /// merged counters become a per-"region" dashboard row (so the
    /// anomaly view works per shard), and its merged metrics — when the
    /// caller hasn't already merged them at region level — fold into
    /// the global registry. The sharded equivalent of
    /// [`GlobalDashboard::ingest`].
    pub fn ingest_shard(
        &mut self,
        name: impl Into<String>,
        counters: &BTreeMap<EventKind, u64>,
        metrics: Option<&MetricsRegistry>,
    ) {
        self.merged.merge_counters(counters);
        if let Some(m) = metrics {
            self.metrics.merge(m);
        }
        self.per_region.insert(name.into(), counters.clone());
    }

    /// Merge a registry into the global metrics without adding a
    /// dashboard row (region-level metrics for sharded runs, where the
    /// per-shard rows arrive via [`GlobalDashboard::ingest_shard`] with
    /// counters only).
    pub fn merge_metrics(&mut self, metrics: &MetricsRegistry) {
        self.metrics.merge(metrics);
    }

    /// Cross-region merged metrics.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Roll the merged metrics into the §8.1 ops table.
    pub fn snapshot(&self, sim_time: Duration) -> DashboardSnapshot {
        DashboardSnapshot::from_metrics(&self.metrics, sim_time)
    }

    pub fn global_count(&self, kind: EventKind) -> u64 {
        self.merged.count(kind)
    }

    pub fn global_revert_rate(&self) -> f64 {
        self.merged.revert_rate()
    }

    /// Regions whose revert rate exceeds `threshold` — the anomaly view
    /// engineers scan for recommender-quality drift.
    pub fn anomalous_regions(&self, threshold: f64) -> Vec<(String, f64)> {
        self.per_region
            .iter()
            .filter_map(|(name, counters)| {
                let implemented = counters
                    .get(&EventKind::ImplementSucceeded)
                    .copied()
                    .unwrap_or(0);
                if implemented == 0 {
                    return None;
                }
                let reverts = counters
                    .get(&EventKind::RevertSucceeded)
                    .copied()
                    .unwrap_or(0);
                let rate = reverts as f64 / implemented as f64;
                if rate > threshold {
                    Some((name.clone(), rate))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Render the dashboard summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet: {} recommendations, {} implemented, {} reverted ({:.1}%), {} incidents\n",
            self.global_count(EventKind::RecommendationCreated),
            self.global_count(EventKind::ImplementSucceeded),
            self.global_count(EventKind::RevertSucceeded),
            self.global_revert_rate() * 100.0,
            self.global_count(EventKind::IncidentRaised),
        ));
        for (region, counters) in &self.per_region {
            let implemented = counters
                .get(&EventKind::ImplementSucceeded)
                .copied()
                .unwrap_or(0);
            out.push_str(&format!("  {region}: {implemented} implemented\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{DbSettings, ServerSettings, Setting};
    use sqlmini::clock::{Duration, SimClock};
    use sqlmini::engine::{Database, DbConfig};
    use sqlmini::query::{CmpOp, Predicate, QueryTemplate, SelectQuery, Statement};
    use sqlmini::schema::{ColumnDef, ColumnId, TableDef};
    use sqlmini::types::{Value, ValueType};

    fn mdb(name: &str, seed: u64) -> (ManagedDb, QueryTemplate) {
        let mut db = Database::new(
            name,
            DbConfig {
                seed,
                ..DbConfig::default()
            },
            SimClock::new(),
        );
        let t = db
            .create_table(TableDef::new(
                "t",
                vec![
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("k", ValueType::Int),
                ],
            ))
            .unwrap();
        db.load_rows(
            t,
            (0..15_000i64).map(|i| vec![Value::Int(i), Value::Int(i % 300)]),
        );
        db.rebuild_stats(t);
        let mut q = SelectQuery::new(t);
        q.predicates = vec![Predicate::param(ColumnId(1), CmpOp::Eq, 0)];
        q.projection = vec![ColumnId(0)];
        let tpl = QueryTemplate::new(Statement::Select(q), 1);
        let settings = DbSettings {
            auto_create: Setting::On,
            auto_drop: Setting::On,
        };
        (ManagedDb::new(db, settings, ServerSettings::default()), tpl)
    }

    #[test]
    fn regions_are_isolated_but_dashboard_merges() {
        let mut west = Region::new(
            "west",
            PlanePolicy {
                analysis_interval: Duration::from_hours(4),
                validation_min_wait: Duration::from_hours(2),
                ..PlanePolicy::default()
            },
        );
        let mut east = Region::new(
            "east",
            PlanePolicy {
                analysis_interval: Duration::from_hours(4),
                validation_min_wait: Duration::from_hours(2),
                ..PlanePolicy::default()
            },
        );
        let (mdb_w, tpl_w) = mdb("w-db", 1);
        let (mdb_e, tpl_e) = mdb("e-db", 2);
        west.adopt(mdb_w);
        east.adopt(mdb_e);

        for h in 0..16u64 {
            for (region, tpl) in [(&mut west, &tpl_w), (&mut east, &tpl_e)] {
                let m = region
                    .database_mut(if region.name == "west" {
                        "w-db"
                    } else {
                        "e-db"
                    })
                    .unwrap();
                for i in 0..20 {
                    m.db.execute(tpl, &[Value::Int(((h * 20 + i) % 300) as i64)])
                        .unwrap();
                }
                m.db.clock().advance(Duration::from_hours(1));
                region.tick_all();
            }
        }

        // Each region has its own state; nothing crossed.
        assert!(west.plane.store.all().all(|r| r.database == "w-db"));
        assert!(east.plane.store.all().all(|r| r.database == "e-db"));

        let mut dash = GlobalDashboard::new();
        dash.ingest(&west);
        dash.ingest(&east);
        assert_eq!(
            dash.global_count(EventKind::RecommendationCreated),
            west.export_telemetry()
                .count(EventKind::RecommendationCreated)
                + east
                    .export_telemetry()
                    .count(EventKind::RecommendationCreated)
        );
        let summary = dash.render();
        assert!(summary.contains("west"));
        assert!(summary.contains("east"));
    }

    #[test]
    fn anomalous_region_detection() {
        let mut dash = GlobalDashboard::new();
        let mut bad = Region::new("bad", PlanePolicy::default());
        // Fake the counters via the public emit path.
        for _ in 0..10 {
            bad.plane.telemetry.emit(
                EventKind::ImplementSucceeded,
                "x",
                "",
                sqlmini::clock::Timestamp(0),
            );
        }
        for _ in 0..4 {
            bad.plane.telemetry.emit(
                EventKind::RevertSucceeded,
                "x",
                "",
                sqlmini::clock::Timestamp(0),
            );
        }
        dash.ingest(&bad);
        let anomalies = dash.anomalous_regions(0.2);
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].0, "bad");
        assert!((anomalies[0].1 - 0.4).abs() < 1e-9);
        assert!(dash.anomalous_regions(0.5).is_empty());
    }
}
