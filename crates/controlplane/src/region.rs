//! Per-region deployment and cross-region aggregation (§3, §8.3).
//!
//! One auto-indexing service instance manages all databases in a region —
//! the compliance boundary: state and telemetry never leave it. What
//! *does* cross regions is anonymized aggregate telemetry, merged into
//! the global dashboards on-call engineers use.

use crate::plane::{ControlPlane, ManagedDb, PlanePolicy};
use crate::telemetry::{EventKind, Telemetry};
use std::collections::BTreeMap;

/// One region: a control plane plus its managed databases.
pub struct Region {
    pub name: String,
    pub plane: ControlPlane,
    databases: BTreeMap<String, ManagedDb>,
}

impl Region {
    pub fn new(name: impl Into<String>, policy: PlanePolicy) -> Region {
        Region {
            name: name.into(),
            plane: ControlPlane::new(policy),
            databases: BTreeMap::new(),
        }
    }

    /// Register a database with this region.
    pub fn adopt(&mut self, mdb: ManagedDb) {
        self.databases.insert(mdb.db.name.clone(), mdb);
    }

    pub fn database_mut(&mut self, name: &str) -> Option<&mut ManagedDb> {
        self.databases.get_mut(name)
    }

    pub fn databases(&self) -> impl Iterator<Item = &ManagedDb> {
        self.databases.values()
    }

    pub fn n_databases(&self) -> usize {
        self.databases.len()
    }

    /// One orchestration pass over every managed database.
    pub fn tick_all(&mut self) {
        // Drain-and-reinsert so the plane can borrow &mut self.plane and
        // each database independently.
        let names: Vec<String> = self.databases.keys().cloned().collect();
        for name in names {
            if let Some(mut mdb) = self.databases.remove(&name) {
                self.plane.tick(&mut mdb);
                self.databases.insert(name, mdb);
            }
        }
    }

    /// The region's exportable (anonymized) telemetry.
    pub fn export_telemetry(&self) -> &Telemetry {
        &self.plane.telemetry
    }
}

/// The global dashboard: merged counters across regions, health rollups,
/// and the fleet-level figures §8.1 reports.
#[derive(Debug, Default)]
pub struct GlobalDashboard {
    merged: Telemetry,
    per_region: BTreeMap<String, BTreeMap<EventKind, u64>>,
}

impl GlobalDashboard {
    pub fn new() -> GlobalDashboard {
        GlobalDashboard {
            merged: Telemetry::new(),
            per_region: BTreeMap::new(),
        }
    }

    /// Ingest one region's telemetry snapshot.
    pub fn ingest(&mut self, region: &Region) {
        self.merged.merge(region.export_telemetry());
        self.per_region.insert(
            region.name.clone(),
            region.export_telemetry().counters().clone(),
        );
    }

    pub fn global_count(&self, kind: EventKind) -> u64 {
        self.merged.count(kind)
    }

    pub fn global_revert_rate(&self) -> f64 {
        self.merged.revert_rate()
    }

    /// Regions whose revert rate exceeds `threshold` — the anomaly view
    /// engineers scan for recommender-quality drift.
    pub fn anomalous_regions(&self, threshold: f64) -> Vec<(String, f64)> {
        self.per_region
            .iter()
            .filter_map(|(name, counters)| {
                let implemented = counters
                    .get(&EventKind::ImplementSucceeded)
                    .copied()
                    .unwrap_or(0);
                if implemented == 0 {
                    return None;
                }
                let reverts = counters
                    .get(&EventKind::RevertSucceeded)
                    .copied()
                    .unwrap_or(0);
                let rate = reverts as f64 / implemented as f64;
                if rate > threshold {
                    Some((name.clone(), rate))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Render the dashboard summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet: {} recommendations, {} implemented, {} reverted ({:.1}%), {} incidents\n",
            self.global_count(EventKind::RecommendationCreated),
            self.global_count(EventKind::ImplementSucceeded),
            self.global_count(EventKind::RevertSucceeded),
            self.global_revert_rate() * 100.0,
            self.global_count(EventKind::IncidentRaised),
        ));
        for (region, counters) in &self.per_region {
            let implemented = counters
                .get(&EventKind::ImplementSucceeded)
                .copied()
                .unwrap_or(0);
            out.push_str(&format!("  {region}: {implemented} implemented\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{DbSettings, ServerSettings, Setting};
    use sqlmini::clock::{Duration, SimClock};
    use sqlmini::engine::{Database, DbConfig};
    use sqlmini::query::{CmpOp, Predicate, QueryTemplate, SelectQuery, Statement};
    use sqlmini::schema::{ColumnDef, ColumnId, TableDef};
    use sqlmini::types::{Value, ValueType};

    fn mdb(name: &str, seed: u64) -> (ManagedDb, QueryTemplate) {
        let mut db = Database::new(
            name,
            DbConfig {
                seed,
                ..DbConfig::default()
            },
            SimClock::new(),
        );
        let t = db
            .create_table(TableDef::new(
                "t",
                vec![
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("k", ValueType::Int),
                ],
            ))
            .unwrap();
        db.load_rows(t, (0..15_000i64).map(|i| vec![Value::Int(i), Value::Int(i % 300)]));
        db.rebuild_stats(t);
        let mut q = SelectQuery::new(t);
        q.predicates = vec![Predicate::param(ColumnId(1), CmpOp::Eq, 0)];
        q.projection = vec![ColumnId(0)];
        let tpl = QueryTemplate::new(Statement::Select(q), 1);
        let settings = DbSettings {
            auto_create: Setting::On,
            auto_drop: Setting::On,
        };
        (
            ManagedDb::new(db, settings, ServerSettings::default()),
            tpl,
        )
    }

    #[test]
    fn regions_are_isolated_but_dashboard_merges() {
        let mut west = Region::new("west", PlanePolicy {
            analysis_interval: Duration::from_hours(4),
            validation_min_wait: Duration::from_hours(2),
            ..PlanePolicy::default()
        });
        let mut east = Region::new("east", PlanePolicy {
            analysis_interval: Duration::from_hours(4),
            validation_min_wait: Duration::from_hours(2),
            ..PlanePolicy::default()
        });
        let (mdb_w, tpl_w) = mdb("w-db", 1);
        let (mdb_e, tpl_e) = mdb("e-db", 2);
        west.adopt(mdb_w);
        east.adopt(mdb_e);

        for h in 0..16u64 {
            for (region, tpl) in [(&mut west, &tpl_w), (&mut east, &tpl_e)] {
                let m = region.database_mut(if region.name == "west" { "w-db" } else { "e-db" }).unwrap();
                for i in 0..20 {
                    m.db.execute(tpl, &[Value::Int(((h * 20 + i) % 300) as i64)]).unwrap();
                }
                m.db.clock().advance(Duration::from_hours(1));
                region.tick_all();
            }
        }

        // Each region has its own state; nothing crossed.
        assert!(west.plane.store.all().all(|r| r.database == "w-db"));
        assert!(east.plane.store.all().all(|r| r.database == "e-db"));

        let mut dash = GlobalDashboard::new();
        dash.ingest(&west);
        dash.ingest(&east);
        assert_eq!(
            dash.global_count(EventKind::RecommendationCreated),
            west.export_telemetry().count(EventKind::RecommendationCreated)
                + east.export_telemetry().count(EventKind::RecommendationCreated)
        );
        let summary = dash.render();
        assert!(summary.contains("west"));
        assert!(summary.contains("east"));
    }

    #[test]
    fn anomalous_region_detection() {
        let mut dash = GlobalDashboard::new();
        let mut bad = Region::new("bad", PlanePolicy::default());
        // Fake the counters via the public emit path.
        for _ in 0..10 {
            bad.plane.telemetry.emit(EventKind::ImplementSucceeded, "x", "", sqlmini::clock::Timestamp(0));
        }
        for _ in 0..4 {
            bad.plane.telemetry.emit(EventKind::RevertSucceeded, "x", "", sqlmini::clock::Timestamp(0));
        }
        dash.ingest(&bad);
        let anomalies = dash.anomalous_regions(0.2);
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].0, "bad");
        assert!((anomalies[0].1 - 0.4).abs() < 1e-9);
        assert!(dash.anomalous_regions(0.5).is_empty());
    }
}
