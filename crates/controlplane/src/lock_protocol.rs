//! The drop-index lock protocol (§8.3).
//!
//! Dropping an index is a metadata flash, but it needs an exclusive
//! schema lock; under SQL Server's FIFO lock scheduler a drop blocked
//! behind one long reader convoys every later query. The production fix —
//! reproduced here — issues the drop at **low lock priority** (it never
//! blocks user requests while waiting) with a timeout, and retries with
//! exponential back-off when the timeout fires. The control plane manages
//! this fault-tolerant protocol.

use crate::metrics::MetricsRegistry;
use crate::trace::Tracer;
use sqlmini::clock::{Duration, Timestamp};
use sqlmini::lock::{
    simulate, summarize_convoy, ConvoySummary, LockMode, LockOutcome, LockPriority, LockRequest,
};

/// Protocol configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DropProtocolConfig {
    /// Low-priority wait timeout for each attempt.
    pub attempt_timeout: Duration,
    /// Back-off after a timed-out attempt (doubles per retry).
    pub initial_backoff: Duration,
    pub max_attempts: u32,
    /// Use the naive normal-priority drop instead (the ablation arm).
    pub naive_fifo: bool,
}

impl Default for DropProtocolConfig {
    fn default() -> DropProtocolConfig {
        DropProtocolConfig {
            attempt_timeout: Duration::from_secs(30),
            initial_backoff: Duration::from_secs(60),
            max_attempts: 5,
            naive_fifo: false,
        }
    }
}

/// Result of running the protocol against a concurrent workload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DropProtocolOutcome {
    pub succeeded: bool,
    pub attempts: u32,
    /// When the drop lock was finally granted.
    pub granted_at: Option<Timestamp>,
    /// Convoy damage inflicted on the concurrent workload.
    pub convoy: ConvoySummary,
}

/// Run the drop protocol over a simulated concurrent workload.
///
/// `workload` is the stream of shared schema-lock requests (the user's
/// queries) that will execute around the drop; `drop_at` is when the
/// control plane first tries the drop.
pub fn run_drop_protocol(
    workload: &[LockRequest],
    drop_at: Timestamp,
    cfg: &DropProtocolConfig,
) -> DropProtocolOutcome {
    let mut tracer = Tracer::disabled();
    let mut metrics = MetricsRegistry::default();
    run_drop_protocol_observed(workload, drop_at, cfg, &mut tracer, &mut metrics)
}

/// [`run_drop_protocol`] with observability: every attempt becomes a
/// child span under a `drop_protocol` root (timestamped in sim time),
/// and grant/timeout counters plus a `lock.wait_ms` histogram land in
/// `metrics`. The un-observed entry point delegates here with a
/// disabled tracer and a throwaway registry, so the protocol logic
/// exists exactly once.
pub fn run_drop_protocol_observed(
    workload: &[LockRequest],
    drop_at: Timestamp,
    cfg: &DropProtocolConfig,
    tracer: &mut Tracer,
    metrics: &mut MetricsRegistry,
) -> DropProtocolOutcome {
    let drop_id_base = workload.iter().map(|r| r.id).max().unwrap_or(0) + 1;
    let mut attempt_at = drop_at;
    let mut backoff = cfg.initial_backoff;
    tracer.start("drop_protocol", drop_at);
    tracer.attr(
        "mode",
        if cfg.naive_fifo {
            "naive_fifo"
        } else {
            "low_priority"
        },
    );

    if cfg.naive_fifo {
        // Single normal-priority attempt: always "succeeds" eventually but
        // can convoy the workload behind it.
        let mut reqs = workload.to_vec();
        reqs.push(LockRequest {
            id: drop_id_base,
            mode: LockMode::Exclusive,
            priority: LockPriority::Normal,
            arrival: drop_at,
            hold: Duration::from_millis(10),
        });
        let outcomes = simulate(&reqs);
        let drop_outcome = outcome_of(&outcomes, drop_id_base);
        let convoy = summarize_convoy(&reqs, &outcomes);
        let ended_at = drop_outcome.granted_at.unwrap_or(drop_at) + drop_outcome.waited;
        record_attempt(tracer, metrics, 1, attempt_at, &drop_outcome, ended_at);
        metrics.add("lock.convoy_blocked", convoy.blocked_shared as u64);
        tracer.end(ended_at);
        return DropProtocolOutcome {
            succeeded: !drop_outcome.timed_out,
            attempts: 1,
            granted_at: drop_outcome.granted_at,
            convoy,
        };
    }

    // Low-priority attempts with back-off. Each attempt is simulated over
    // the same workload with a drop request at `attempt_at`; a timeout
    // triggers the next attempt later.
    let mut attempts = 0;
    while attempts < cfg.max_attempts {
        attempts += 1;
        let drop_id = drop_id_base + attempts as u64;
        let mut reqs = workload.to_vec();
        reqs.push(LockRequest {
            id: drop_id,
            mode: LockMode::Exclusive,
            priority: LockPriority::Low {
                timeout: cfg.attempt_timeout,
            },
            arrival: attempt_at,
            hold: Duration::from_millis(10),
        });
        let outcomes = simulate(&reqs);
        let drop_outcome = outcome_of(&outcomes, drop_id);
        if !drop_outcome.timed_out {
            let convoy = summarize_convoy(&reqs, &outcomes);
            let granted_at = drop_outcome.granted_at.unwrap_or(attempt_at);
            record_attempt(
                tracer,
                metrics,
                attempts,
                attempt_at,
                &drop_outcome,
                granted_at,
            );
            metrics.add("lock.convoy_blocked", convoy.blocked_shared as u64);
            tracer.end(granted_at);
            return DropProtocolOutcome {
                succeeded: true,
                attempts,
                granted_at: drop_outcome.granted_at,
                convoy,
            };
        }
        let aborted_at = attempt_at + cfg.attempt_timeout;
        record_attempt(
            tracer,
            metrics,
            attempts,
            attempt_at,
            &drop_outcome,
            aborted_at,
        );
        attempt_at = aborted_at + backoff;
        backoff = backoff.saturating_mul(2);
    }

    // All attempts timed out: report the convoy of the *final* simulation
    // (low-priority attempts never blocked anyone by construction).
    let outcomes = simulate(workload);
    let convoy = summarize_convoy(workload, &outcomes);
    metrics.inc("lock.gave_up");
    metrics.add("lock.convoy_blocked", convoy.blocked_shared as u64);
    tracer.end(attempt_at);
    DropProtocolOutcome {
        succeeded: false,
        attempts,
        granted_at: None,
        convoy,
    }
}

/// One attempt's span + counters: `lock.granted` / `lock.timed_out`, and
/// the realized wait into the `lock.wait_ms` histogram.
fn record_attempt(
    tracer: &mut Tracer,
    metrics: &mut MetricsRegistry,
    attempt: u32,
    started: Timestamp,
    outcome: &LockOutcome,
    ended: Timestamp,
) {
    tracer.start("lock_attempt", started);
    tracer.attr("attempt", attempt.to_string());
    tracer.attr(
        "outcome",
        if outcome.timed_out {
            "timed_out"
        } else {
            "granted"
        },
    );
    tracer.attr("waited_ms", outcome.waited.millis().to_string());
    tracer.end(ended);
    if outcome.timed_out {
        metrics.inc("lock.timed_out");
    } else {
        metrics.inc("lock.granted");
    }
    metrics.observe_time("lock.wait_ms", outcome.waited.millis());
}

fn outcome_of(outcomes: &[LockOutcome], id: u64) -> LockOutcome {
    outcomes
        .iter()
        .find(|o| o.id == id)
        .cloned()
        .unwrap_or(LockOutcome {
            id,
            granted_at: None,
            waited: Duration::ZERO,
            timed_out: true,
        })
}

/// Build a shared-lock workload: `n` queries arriving every `gap`, each
/// holding for `hold`, starting at `start`. Long-running readers can be
/// added on top.
pub fn steady_workload(
    n: u64,
    start: Timestamp,
    gap: Duration,
    hold: Duration,
) -> Vec<LockRequest> {
    (0..n)
        .map(|i| LockRequest {
            id: i + 1,
            mode: LockMode::Shared,
            priority: LockPriority::Normal,
            arrival: start + Duration(gap.millis() * i),
            hold,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload_with_long_reader() -> Vec<LockRequest> {
        let mut w = steady_workload(
            50,
            Timestamp(2_000),
            Duration::from_millis(500),
            Duration::from_millis(200),
        );
        w.push(LockRequest {
            id: 900,
            mode: LockMode::Shared,
            priority: LockPriority::Normal,
            arrival: Timestamp(0),
            hold: Duration::from_secs(120), // 2-minute reader
        });
        w
    }

    #[test]
    fn naive_fifo_drop_convoys_workload() {
        let w = workload_with_long_reader();
        let out = run_drop_protocol(
            &w,
            Timestamp(1_000),
            &DropProtocolConfig {
                naive_fifo: true,
                ..DropProtocolConfig::default()
            },
        );
        assert!(out.succeeded);
        assert!(
            out.convoy.blocked_shared >= 40,
            "FIFO drop must convoy the workload: {:?}",
            out.convoy
        );
        assert!(out.convoy.max_shared_wait >= Duration::from_secs(60));
    }

    #[test]
    fn low_priority_drop_avoids_convoy_and_retries() {
        let w = workload_with_long_reader();
        let out = run_drop_protocol(&w, Timestamp(1_000), &DropProtocolConfig::default());
        assert!(out.succeeded, "{out:?}");
        assert!(out.attempts >= 2, "first 30s attempt must time out");
        assert_eq!(
            out.convoy.blocked_shared, 0,
            "low-priority waiting must not block shared requests: {:?}",
            out.convoy
        );
        // Granted only after the long reader finished.
        assert!(out.granted_at.unwrap() >= Timestamp(120_000));
    }

    #[test]
    fn gives_up_after_max_attempts() {
        // A reader that never ends within the protocol's horizon.
        let w = vec![LockRequest {
            id: 1,
            mode: LockMode::Shared,
            priority: LockPriority::Normal,
            arrival: Timestamp(0),
            hold: Duration::from_days(1),
        }];
        let cfg = DropProtocolConfig {
            max_attempts: 3,
            ..DropProtocolConfig::default()
        };
        let out = run_drop_protocol(&w, Timestamp(100), &cfg);
        assert!(!out.succeeded);
        assert_eq!(out.attempts, 3);
        assert_eq!(out.granted_at, None);
    }

    #[test]
    fn aborted_attempts_requeue_on_the_exponential_backoff_schedule() {
        // One reader holds for 300s. Default protocol: 30s attempt
        // timeout, 60s initial back-off, doubling per retry. Attempt
        // windows are [0,30], [90,120], [240,270] — all aborted — and
        // the 4th requeue arrives at 510s, after the reader drained, so
        // it is granted immediately at its own arrival instant.
        let w = vec![LockRequest {
            id: 1,
            mode: LockMode::Shared,
            priority: LockPriority::Normal,
            arrival: Timestamp(0),
            hold: Duration::from_secs(300),
        }];
        let out = run_drop_protocol(&w, Timestamp(0), &DropProtocolConfig::default());
        assert!(out.succeeded);
        assert_eq!(out.attempts, 4, "three aborts before the free slot");
        assert_eq!(out.granted_at, Some(Timestamp(510_000)));
    }

    #[test]
    fn wait_window_grant_lands_at_reader_release() {
        // Reader ends at 100s, inside the second attempt's [90,120]
        // wait window: the attempt is NOT aborted — the waiter picks up
        // the lock the instant the reader releases it.
        let w = vec![LockRequest {
            id: 1,
            mode: LockMode::Shared,
            priority: LockPriority::Normal,
            arrival: Timestamp(0),
            hold: Duration::from_secs(100),
        }];
        let out = run_drop_protocol(&w, Timestamp(0), &DropProtocolConfig::default());
        assert!(out.succeeded);
        assert_eq!(out.attempts, 2, "first window aborts, second waits it out");
        assert_eq!(out.granted_at, Some(Timestamp(100_000)));
    }

    #[test]
    fn zero_backoff_requeues_back_to_back() {
        // With no back-off, aborted attempts requeue immediately after
        // their timeout: windows [0,30], [30,60], [60,90], then the
        // fourth waits from 90s and is granted at the 100s release.
        let w = vec![LockRequest {
            id: 1,
            mode: LockMode::Shared,
            priority: LockPriority::Normal,
            arrival: Timestamp(0),
            hold: Duration::from_secs(100),
        }];
        let cfg = DropProtocolConfig {
            initial_backoff: Duration::ZERO,
            ..DropProtocolConfig::default()
        };
        let out = run_drop_protocol(&w, Timestamp(0), &cfg);
        assert!(out.succeeded);
        assert_eq!(out.attempts, 4);
        assert_eq!(out.granted_at, Some(Timestamp(100_000)));
    }

    #[test]
    fn aborts_under_steady_traffic_never_block_and_count_their_waits() {
        // The aborted low-priority waits happen *while* shared traffic
        // keeps flowing; none of it may queue behind the drop, and the
        // drop must still land on its requeue schedule.
        let mut w = steady_workload(
            120,
            Timestamp(0),
            Duration::from_secs(2),
            Duration::from_millis(200),
        );
        w.push(LockRequest {
            id: 900,
            mode: LockMode::Shared,
            priority: LockPriority::Normal,
            arrival: Timestamp(0),
            hold: Duration::from_secs(300),
        });
        let out = run_drop_protocol(&w, Timestamp(0), &DropProtocolConfig::default());
        assert!(out.succeeded);
        assert!(
            out.attempts >= 4,
            "the 300s reader aborts the early windows"
        );
        assert_eq!(
            out.convoy.blocked_shared, 0,
            "aborted low-priority waits must not convoy anyone: {:?}",
            out.convoy
        );
        assert!(out.granted_at.unwrap() >= Timestamp(300_000));
    }

    #[test]
    fn observed_protocol_emits_attempt_spans_and_lock_counters() {
        // 300s reader → three aborted low-priority windows, granted on
        // the 4th; every attempt must appear as a child span and the
        // counters must foot with the outcome.
        let w = vec![LockRequest {
            id: 1,
            mode: LockMode::Shared,
            priority: LockPriority::Normal,
            arrival: Timestamp(0),
            hold: Duration::from_secs(300),
        }];
        let mut tracer = Tracer::enabled();
        let mut metrics = MetricsRegistry::default();
        let out = run_drop_protocol_observed(
            &w,
            Timestamp(0),
            &DropProtocolConfig::default(),
            &mut tracer,
            &mut metrics,
        );
        assert!(out.succeeded);
        assert_eq!(out.attempts, 4);
        let roots = tracer.roots();
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!(root.name, "drop_protocol");
        assert_eq!(root.attr("mode"), Some("low_priority"));
        assert_eq!(root.children.len(), 4, "one child span per attempt");
        assert_eq!(root.children[0].attr("outcome"), Some("timed_out"));
        assert_eq!(root.children[3].attr("outcome"), Some("granted"));
        // Root span closes at the grant instant.
        assert_eq!(root.end, out.granted_at.unwrap());
        assert_eq!(metrics.counter("lock.timed_out"), 3);
        assert_eq!(metrics.counter("lock.granted"), 1);
        assert_eq!(metrics.histogram("lock.wait_ms").unwrap().count(), 4);
    }

    #[test]
    fn observed_protocol_is_pure_over_the_observers() {
        // Instrumentation must not perturb the protocol: observed and
        // un-observed runs return identical outcomes.
        let w = workload_with_long_reader();
        let plain = run_drop_protocol(&w, Timestamp(1_000), &DropProtocolConfig::default());
        let mut tracer = Tracer::enabled();
        let mut metrics = MetricsRegistry::default();
        let observed = run_drop_protocol_observed(
            &w,
            Timestamp(1_000),
            &DropProtocolConfig::default(),
            &mut tracer,
            &mut metrics,
        );
        assert_eq!(plain, observed);
        assert_eq!(
            metrics.counter("lock.granted") + metrics.counter("lock.timed_out"),
            observed.attempts as u64
        );
    }

    #[test]
    fn uncontended_drop_succeeds_first_try() {
        let w = steady_workload(
            5,
            Timestamp(100_000),
            Duration::from_secs(10),
            Duration::from_millis(10),
        );
        let out = run_drop_protocol(&w, Timestamp(0), &DropProtocolConfig::default());
        assert!(out.succeeded);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.granted_at, Some(Timestamp(0)));
    }
}
