//! The shard tier of the region driver: tenant→shard assignment and the
//! per-shard worker that drives its slice of the fleet.
//!
//! The paper's service manages hundreds of thousands of databases per
//! region with *one logical* control plane that is physically many
//! workers; no tenant's tuning outcome may depend on which worker ran
//! it, or on how many workers there are. This module supplies the two
//! pieces under the [`crate::coordinator::RegionCoordinator`]:
//!
//! * [`ShardAssignment`] — a pure, *shard-count-stable* mapping from
//!   global fleet index to shard. Tenants hash (splitmix64) onto a fixed
//!   ring of [`ASSIGNMENT_SLOTS`] slots; a shard owns a contiguous slot
//!   range. Because the slot of a tenant never depends on the shard
//!   count, resharding from `a` to `b = k·a` shards splits each shard
//!   into exactly `k` successors (`shard_a(i) == shard_b(i) / k`) and
//!   never shuffles a tenant between unrelated shards.
//! * [`ShardDriver`] — a thin wrapper around the
//!   [`FleetDriver`](crate::fleet_driver::FleetDriver) loop that drives
//!   one shard's members. Each member carries its **global** fleet
//!   index, so every per-tenant random stream (faults, auto-fraction,
//!   flight cohorts, RecoId blocks) is identical to what an unsharded
//!   run would draw — the byte-identical determinism contract.
//!
//! # Lazy hydration
//!
//! A million-tenant fleet cannot be resident at once. Under
//! [`HydrationMode::Lazy`] the shard never materializes its slice:
//! members are hydrated from the [`FleetSpec`] one chunk at a time,
//! each tenant is constructed, driven for *all* its ticks, folded into
//! the shard accumulator, and dropped — so peak resident tenants is
//! bounded by the worker thread count, independent of fleet size (the
//! [`HydrationGauge`] proves it). The fold keeps only a per-tenant
//! canonical-line digest (plus merged counters/metrics), which is
//! exactly enough for the region to reconstruct
//! [`FleetReport::canonical_digest`](crate::fleet_driver::FleetReport::canonical_digest)
//! byte-for-byte.

use crate::fleet_driver::{
    canonical_line, fnv1a64_extend, index_hash_bits, FleetDriver, FleetReport, TenantOutcome,
    TenantResult, FNV_OFFSET,
};
use crate::metrics::MetricsRegistry;
use crate::telemetry::Telemetry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use workload::fleet::{FleetSpec, Tenant};

/// Size of the consistent-assignment slot ring. Shards own contiguous
/// slot ranges, so any shard count up to this many is supported and
/// dividing shard counts nest (see [`ShardAssignment`]).
pub const ASSIGNMENT_SLOTS: usize = 4096;

/// Salt for the tenant→slot hash stream — distinct from the
/// auto-fraction and flight-cohort salts, so shard placement is
/// independent of both.
const SHARD_SLOT_SALT: u64 = 0x5348_4152_4453;

/// Pure, shard-count-stable tenant→shard mapping.
///
/// `slot_of` depends only on the global index; `shard_of` maps the
/// slot ring onto `shards` contiguous ranges. Membership in a flight
/// cohort, the auto fraction, and every other per-tenant stream is keyed
/// by the global index, never by the shard — so resharding changes
/// *where* a tenant runs and nothing about *what* it computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardAssignment {
    shards: usize,
}

impl ShardAssignment {
    /// A mapping onto `shards` shards (1 ≤ shards ≤ [`ASSIGNMENT_SLOTS`]).
    pub fn new(shards: usize) -> ShardAssignment {
        assert!(
            (1..=ASSIGNMENT_SLOTS).contains(&shards),
            "shard count {shards} out of range 1..={ASSIGNMENT_SLOTS}"
        );
        ShardAssignment { shards }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The tenant's slot on the ring — a pure splitmix hash of the
    /// global index, independent of the shard count.
    pub fn slot_of(index: usize) -> usize {
        (index_hash_bits(index, SHARD_SLOT_SALT) % ASSIGNMENT_SLOTS as u64) as usize
    }

    /// Which shard owns a slot: slot `s` belongs to shard
    /// `s·shards / SLOTS`, i.e. shards own contiguous slot ranges. For
    /// shard counts `a | b`, `shard_a(s) == shard_b(s)·a / b` — the
    /// nesting property resharding tests pin down.
    pub fn shard_of_slot(&self, slot: usize) -> usize {
        slot * self.shards / ASSIGNMENT_SLOTS
    }

    /// Which shard owns a tenant.
    pub fn shard_of(&self, index: usize) -> usize {
        self.shard_of_slot(Self::slot_of(index))
    }

    /// The global indices shard `shard` owns, ascending.
    pub fn members(&self, shard: usize, fleet_len: usize) -> Vec<usize> {
        (0..fleet_len)
            .filter(|&i| self.shard_of(i) == shard)
            .collect()
    }

    /// All shards' member lists (`partition(n)[s] == members(s, n)`).
    pub fn partition(&self, fleet_len: usize) -> Vec<Vec<usize>> {
        let mut parts = vec![Vec::new(); self.shards];
        for i in 0..fleet_len {
            parts[self.shard_of(i)].push(i);
        }
        parts
    }
}

/// Region-wide gauge of simultaneously hydrated tenants. Shared by all
/// shard drivers; `peak()` is the number the million-tenant smoke run
/// asserts a static bound on.
#[derive(Debug, Default)]
pub struct HydrationGauge {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl HydrationGauge {
    pub fn new() -> HydrationGauge {
        HydrationGauge::default()
    }

    /// One tenant is about to hydrate.
    pub fn enter(&self) {
        self.enter_n(1);
    }

    /// `n` tenants are about to hydrate (eager shard materialization).
    pub fn enter_n(&self, n: usize) {
        let now = self.current.fetch_add(n, Ordering::SeqCst) + n;
        self.peak.fetch_max(now, Ordering::SeqCst);
    }

    /// One tenant finished all its ticks and dropped.
    pub fn exit(&self) {
        self.exit_n(1);
    }

    pub fn exit_n(&self, n: usize) {
        self.current.fetch_sub(n, Ordering::SeqCst);
    }

    /// Tenants resident right now.
    pub fn current(&self) -> usize {
        self.current.load(Ordering::SeqCst)
    }

    /// High-water mark of simultaneously resident tenants.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::SeqCst)
    }
}

/// Whether a shard materializes its whole slice up front or streams it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HydrationMode {
    /// Hydrate every member before driving — the small-fleet path that
    /// reuses the [`FleetDriver`] loop verbatim (including the serial
    /// wakeup heap) and retains full per-tenant outcomes.
    Eager,
    /// Hydrate tenant-major in chunks: construct a tenant, run all its
    /// ticks, fold, drop. Peak resident tenants ≤ worker threads,
    /// independent of fleet size.
    Lazy,
}

/// Lifecycle commands the coordinator sends a shard worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardCommand {
    /// Drive every member tenant for `ticks` control-plane passes.
    Drive { ticks: u32 },
}

/// What one shard hands back to the coordinator: per-tenant canonical
/// digests keyed by global index (always), full outcomes when retained,
/// and the shard's merged sinks. Merging shard reports in global-index
/// order reconstructs the unsharded [`FleetReport`] surfaces exactly —
/// the algebra the `sharded_region` proptests pin down.
#[derive(Debug)]
pub struct ShardReport {
    pub shard: usize,
    /// Member count (the digests vector has exactly this many entries).
    pub members: usize,
    /// `(global index, FNV-1a of the tenant's canonical line)`, in
    /// ascending index order.
    pub digests: Vec<(usize, u64)>,
    /// Full outcomes, retained only when the coordinator asked (small
    /// fleets / oracle comparisons) — `None` keeps memory O(1) per
    /// tenant at the million scale.
    pub outcomes: Option<Vec<(usize, TenantOutcome)>>,
    /// Members' telemetry merged in member order (events capped under
    /// lazy streaming; counters always exact).
    pub telemetry: Telemetry,
    /// Members' canonical metrics merged (a commutative monoid).
    pub metrics: MetricsRegistry,
    /// Driver bookkeeping (scheduler/plan-cache/journal counters).
    pub scheduler_metrics: MetricsRegistry,
    pub by_state: BTreeMap<String, usize>,
    pub statements: u64,
    pub errors: u64,
    pub poisoned: usize,
    pub quarantines: u64,
    pub elapsed: std::time::Duration,
}

impl ShardReport {
    /// Fold an unsharded-style [`FleetReport`] over `members` (the
    /// global indices the report's slice positions correspond to) into
    /// a shard report — the eager path, and the reference algebra the
    /// merge proptests compare the streaming fold against.
    pub fn from_fleet_report(
        shard: usize,
        members: &[usize],
        report: FleetReport,
        retain_outcomes: bool,
    ) -> ShardReport {
        assert_eq!(
            members.len(),
            report.tenants.len(),
            "one outcome per member"
        );
        let digests = members
            .iter()
            .zip(&report.tenants)
            .map(|(&i, t)| (i, fnv1a64_extend(FNV_OFFSET, canonical_line(t).as_bytes())))
            .collect();
        let outcomes =
            retain_outcomes.then(|| members.iter().copied().zip(report.tenants).collect());
        ShardReport {
            shard,
            members: members.len(),
            digests,
            outcomes,
            telemetry: report.telemetry,
            metrics: report.metrics,
            scheduler_metrics: report.scheduler_metrics,
            by_state: report.by_state,
            statements: report.statements,
            errors: report.errors,
            poisoned: report.poisoned,
            quarantines: report.quarantines,
            elapsed: report.elapsed,
        }
    }
}

/// Streaming accumulator for the lazy path: one tenant's results fold in
/// and the tenant drops. Produces the same [`ShardReport`] the eager
/// [`ShardReport::from_fleet_report`] fold would (canonically — raw
/// event retention differs by design).
struct ShardAccumulator {
    shard: usize,
    digests: Vec<(usize, u64)>,
    outcomes: Option<Vec<(usize, TenantOutcome)>>,
    telemetry: Telemetry,
    metrics: MetricsRegistry,
    scheduler_metrics: MetricsRegistry,
    by_state: BTreeMap<String, usize>,
    statements: u64,
    errors: u64,
    poisoned: usize,
    quarantines: u64,
}

impl ShardAccumulator {
    fn new(shard: usize, retain_outcomes: bool) -> ShardAccumulator {
        ShardAccumulator {
            shard,
            digests: Vec::new(),
            outcomes: retain_outcomes.then(Vec::new),
            telemetry: Telemetry::new(),
            metrics: MetricsRegistry::new(),
            scheduler_metrics: MetricsRegistry::new(),
            by_state: BTreeMap::new(),
            statements: 0,
            errors: 0,
            poisoned: 0,
            quarantines: 0,
        }
    }

    fn push(&mut self, index: usize, result: TenantResult, event_retention: usize) {
        let (outcome, telemetry, metrics, sched) = result;
        let line = fnv1a64_extend(FNV_OFFSET, canonical_line(&outcome).as_bytes());
        self.digests.push((index, line));
        self.telemetry.merge(&telemetry);
        // Counters stay exact; raw events are bounded no matter how many
        // million tenants stream through.
        self.telemetry.retain_recent(event_retention);
        self.metrics.merge(&metrics);
        self.scheduler_metrics.merge(&sched);
        for (state, n) in &outcome.by_state {
            *self.by_state.entry(state.clone()).or_default() += n;
        }
        self.statements += outcome.statements;
        self.errors += outcome.errors;
        if outcome.status.is_poisoned() {
            self.poisoned += 1;
        }
        self.quarantines += outcome.quarantines;
        if let Some(out) = &mut self.outcomes {
            out.push((index, outcome));
        }
    }

    fn finish(self, elapsed: std::time::Duration) -> ShardReport {
        ShardReport {
            shard: self.shard,
            members: self.digests.len(),
            digests: self.digests,
            outcomes: self.outcomes,
            telemetry: self.telemetry,
            metrics: self.metrics,
            scheduler_metrics: self.scheduler_metrics,
            by_state: self.by_state,
            statements: self.statements,
            errors: self.errors,
            poisoned: self.poisoned,
            quarantines: self.quarantines,
            elapsed,
        }
    }
}

/// One shard's worker: a [`FleetDriver`] configured like the region's,
/// driving the shard's member slice with every tenant keyed by its
/// global index. Thin by design — all tuning semantics live in the
/// fleet driver; the shard only decides hydration and accounting.
pub struct ShardDriver {
    pub shard: usize,
    /// Global fleet indices this shard owns, ascending.
    pub members: Vec<usize>,
    /// The shard's driver (same config as every other shard's).
    pub driver: FleetDriver,
    /// Worker threads *within* the shard.
    pub threads: usize,
    pub hydration: HydrationMode,
    /// Lazy-mode chunk size: members hydrated per dispatch wave (the
    /// deterministic-fold granularity; results always fold in member
    /// order regardless of intra-chunk completion order).
    pub chunk: usize,
    /// Retain full [`TenantOutcome`]s (small fleets only).
    pub retain_outcomes: bool,
    /// Raw-event cap applied between lazy folds.
    pub event_retention: usize,
    /// Region-shared residency gauge.
    pub gauge: Arc<HydrationGauge>,
}

impl ShardDriver {
    /// Execute one coordinator command.
    pub fn execute(&self, spec: &dyn FleetSpec, command: ShardCommand) -> ShardReport {
        match command {
            ShardCommand::Drive { ticks } => self.drive(spec, ticks),
        }
    }

    fn drive(&self, spec: &dyn FleetSpec, ticks: u32) -> ShardReport {
        match self.hydration {
            HydrationMode::Eager => {
                self.gauge.enter_n(self.members.len());
                let slice: Vec<(usize, Tenant)> =
                    self.members.iter().map(|&i| (i, spec.hydrate(i))).collect();
                let report = self.driver.run_indexed(slice, ticks, self.threads);
                let out = ShardReport::from_fleet_report(
                    self.shard,
                    &self.members,
                    report,
                    self.retain_outcomes,
                );
                self.gauge.exit_n(self.members.len());
                out
            }
            HydrationMode::Lazy => self.drive_lazy(spec, ticks),
        }
    }

    /// Tenant-major streaming: hydrate → run *all* ticks → fold → drop.
    /// Tenant-major (not tick-major) is what bounds residency: a tenant
    /// finishes completely before the next hydrates, so at most
    /// `threads` tenants are ever live. The per-tenant loop is the same
    /// `run_tenant` the parallel pool uses, whose canonical output is
    /// pinned byte-equal to the serial wakeup-heap path.
    fn drive_lazy(&self, spec: &dyn FleetSpec, ticks: u32) -> ShardReport {
        let start = std::time::Instant::now();
        let mut acc = ShardAccumulator::new(self.shard, self.retain_outcomes);
        let chunk = self.chunk.max(1);
        for wave in self.members.chunks(chunk) {
            let results: Vec<TenantResult> = if self.threads <= 1 || wave.len() <= 1 {
                wave.iter()
                    .map(|&i| self.one_tenant(spec, i, ticks))
                    .collect()
            } else {
                // Parallel within the wave; slots keyed by wave position
                // so the fold below is in member order regardless of
                // which worker finished first.
                let slots: Vec<Mutex<Option<TenantResult>>> =
                    wave.iter().map(|_| Mutex::new(None)).collect();
                let next = AtomicUsize::new(0);
                crossbeam::thread::scope(|scope| {
                    for _ in 0..self.threads.min(wave.len()) {
                        let slots = &slots;
                        let next = &next;
                        scope.spawn(move || loop {
                            let k = next.fetch_add(1, Ordering::SeqCst);
                            if k >= wave.len() {
                                break;
                            }
                            let result = self.one_tenant(spec, wave[k], ticks);
                            *slots[k].lock().unwrap() = Some(result);
                        });
                    }
                });
                slots
                    .into_iter()
                    .map(|s| s.into_inner().unwrap().expect("wave slot filled"))
                    .collect()
            };
            for (&i, result) in wave.iter().zip(results) {
                acc.push(i, result, self.event_retention);
            }
        }
        acc.finish(start.elapsed())
    }

    /// Hydrate one tenant, drive it to completion, release it.
    fn one_tenant(&self, spec: &dyn FleetSpec, index: usize, ticks: u32) -> TenantResult {
        self.gauge.enter();
        let result = self.driver.run_tenant(index, spec.hydrate(index), ticks);
        self.gauge.exit();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_stable_and_cover_the_ring() {
        // Pure function of the index: same slot every call.
        for i in [0usize, 1, 17, 999_999] {
            assert_eq!(ShardAssignment::slot_of(i), ShardAssignment::slot_of(i));
            assert!(ShardAssignment::slot_of(i) < ASSIGNMENT_SLOTS);
        }
        // A large fleet spreads over many slots (hash sanity).
        let distinct: std::collections::BTreeSet<usize> =
            (0..10_000).map(ShardAssignment::slot_of).collect();
        assert!(distinct.len() > ASSIGNMENT_SLOTS / 2, "{}", distinct.len());
    }

    #[test]
    fn partition_is_exact_and_balanced_enough() {
        let a = ShardAssignment::new(8);
        let parts = a.partition(4_000);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 4_000);
        let mut seen = vec![false; 4_000];
        for (s, part) in parts.iter().enumerate() {
            for &i in part {
                assert!(!seen[i], "tenant {i} owned twice");
                seen[i] = true;
                assert_eq!(a.shard_of(i), s);
            }
        }
        assert!(seen.iter().all(|&b| b));
        // Hash balance: no shard more than 2x the even share.
        for part in &parts {
            assert!(part.len() < 2 * 4_000 / 8, "{}", part.len());
        }
    }

    #[test]
    fn dividing_shard_counts_nest() {
        // shard_4(i) == shard_8(i) / 2 and shard_1 == 0: a reshard from
        // a to k·a shards splits shards, never shuffles tenants across
        // unrelated ones.
        let a1 = ShardAssignment::new(1);
        let a4 = ShardAssignment::new(4);
        let a8 = ShardAssignment::new(8);
        let a16 = ShardAssignment::new(16);
        for i in 0..5_000 {
            assert_eq!(a1.shard_of(i), 0);
            assert_eq!(a4.shard_of(i), a8.shard_of(i) / 2);
            assert_eq!(a4.shard_of(i), a16.shard_of(i) / 4);
            assert_eq!(a8.shard_of(i), a16.shard_of(i) / 2);
        }
    }

    #[test]
    fn gauge_tracks_peak() {
        let g = HydrationGauge::new();
        g.enter();
        g.enter();
        assert_eq!(g.current(), 2);
        g.exit();
        g.enter_n(3);
        assert_eq!(g.current(), 4);
        assert_eq!(g.peak(), 4);
        g.exit_n(4);
        assert_eq!(g.current(), 0);
        assert_eq!(g.peak(), 4, "peak is a high-water mark");
    }
}
