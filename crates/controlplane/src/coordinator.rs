//! The region coordinator: the top tier of the sharded region driver.
//!
//! Decomposes the monolithic fleet loop into
//! coordinator → [`ShardDriver`] workers → tenants. The coordinator
//! owns the tenant→shard [`ShardAssignment`], dispatches
//! [`ShardCommand`]s, and merges the per-shard [`ShardReport`]s into a
//! [`RegionReport`] whose canonical surfaces — digest, optional
//! canonical string, merged counters/metrics, dashboards — are
//! byte-identical to an unsharded
//! [`FleetDriver::run`](crate::fleet_driver::FleetDriver::run) over the
//! same fleet. That is the refactor's contract: sharding (any count),
//! shard concurrency, hydration mode, scheduling mode, thread count,
//! and plan-cache setting are all *invisible* in canonical output.
//!
//! The merge algebra: every shard returns its members' canonical-line
//! digests keyed by **global** index; the region sorts the union by
//! index and folds exactly the way
//! [`FleetReport::canonical_digest`](crate::fleet_driver::FleetReport::canonical_digest)
//! does. Counters and metrics merge as commutative monoids, so shard
//! boundaries cannot leak into them by construction.

use crate::fleet_driver::{
    counters_line, fnv1a64_extend, scheduler_annotated, FleetDriver, FleetDriverConfig,
    TenantOutcome, FNV_OFFSET,
};
use crate::metrics::MetricsRegistry;
use crate::region::DashboardSnapshot;
use crate::shard::{
    HydrationGauge, HydrationMode, ShardAssignment, ShardCommand, ShardDriver, ShardReport,
};
use crate::telemetry::{EventKind, Telemetry};
use sqlmini::clock::Duration;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use workload::fleet::FleetSpec;

/// Whether shard workers run one at a time or concurrently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardConcurrency {
    /// Shards execute in shard order on the caller's thread — the
    /// replay oracle, and the bounded-memory configuration (peak
    /// residency is one shard's worth).
    Sequential,
    /// All shards execute concurrently, one OS thread each. Canonical
    /// output is identical by contract; only wall clock and peak
    /// residency change.
    Parallel,
}

/// Knobs for a sharded region run.
#[derive(Debug, Clone)]
pub struct RegionConfig {
    /// The per-shard fleet-driver config (identical across shards —
    /// a tenant's behavior must not depend on its shard).
    pub driver: FleetDriverConfig,
    pub shards: usize,
    /// Worker threads within each shard.
    pub threads_per_shard: usize,
    pub shard_concurrency: ShardConcurrency,
    pub hydration: HydrationMode,
    /// Lazy-mode hydration chunk size.
    pub chunk: usize,
    /// Retain full per-tenant outcomes (and thus the region canonical
    /// string). Affordable for test-scale fleets; off at the million
    /// scale, where the digest is the comparison surface.
    pub retain_outcomes: bool,
    /// Raw-event cap applied while folding shard telemetry.
    pub event_retention: usize,
}

impl Default for RegionConfig {
    fn default() -> RegionConfig {
        RegionConfig {
            driver: FleetDriverConfig::default(),
            shards: 4,
            threads_per_shard: 1,
            shard_concurrency: ShardConcurrency::Sequential,
            hydration: HydrationMode::Eager,
            chunk: 64,
            retain_outcomes: true,
            event_retention: 10_000,
        }
    }
}

/// Per-shard aggregate row for the management surface (the
/// [`crate::api::RegionFront`] ingests these as dashboard rows).
#[derive(Debug, Clone)]
pub struct ShardSummary {
    pub shard: usize,
    pub tenants: usize,
    pub statements: u64,
    pub errors: u64,
    pub poisoned: usize,
    pub quarantines: u64,
    /// The shard's merged telemetry counters.
    pub counters: BTreeMap<EventKind, u64>,
    pub elapsed: std::time::Duration,
}

/// Merged end-of-run state of a sharded region run.
#[derive(Debug)]
pub struct RegionReport {
    pub tenants: usize,
    pub shards: usize,
    pub ticks: u32,
    pub sim_time: Duration,
    /// Streaming canonical digest — byte-equality surface vs the
    /// unsharded oracle's
    /// [`canonical_digest`](crate::fleet_driver::FleetReport::canonical_digest).
    pub digest: u64,
    /// Full canonical string, present iff `retain_outcomes` was on.
    pub canonical: Option<String>,
    /// Full outcomes in global fleet order, iff `retain_outcomes`.
    pub outcomes: Option<Vec<TenantOutcome>>,
    /// All shards' telemetry merged in shard order (counters exact;
    /// events capped).
    pub telemetry: Telemetry,
    /// All shards' canonical metrics merged.
    pub metrics: MetricsRegistry,
    /// Driver bookkeeping merged across shards.
    pub scheduler_metrics: MetricsRegistry,
    pub by_state: BTreeMap<String, usize>,
    pub statements: u64,
    pub errors: u64,
    pub poisoned: usize,
    pub quarantines: u64,
    /// High-water mark of simultaneously hydrated tenants — the number
    /// the million-tenant smoke run bounds with a static cap.
    pub peak_hydrated: usize,
    pub per_shard: Vec<ShardSummary>,
    pub elapsed: std::time::Duration,
}

impl RegionReport {
    /// The §8.1 ops table from the merged canonical metrics — identical
    /// to the unsharded report's `dashboard()`.
    pub fn dashboard(&self) -> DashboardSnapshot {
        DashboardSnapshot::from_metrics(&self.metrics, self.sim_time)
    }

    /// Ops table plus the scheduler / plan-cache / journal blocks, via
    /// the same annotation helper the unsharded report uses.
    pub fn dashboard_with_scheduler(&self) -> DashboardSnapshot {
        scheduler_annotated(self.dashboard(), &self.scheduler_metrics)
    }

    /// Control-plane passes that actually ran, region-wide.
    pub fn control_ticks_executed(&self) -> u64 {
        self.scheduler_metrics.counter("scheduler.ticks_executed")
    }

    /// Control-plane passes the sparse scheduler proved unnecessary.
    pub fn control_ticks_skipped(&self) -> u64 {
        self.scheduler_metrics.counter("scheduler.ticks_skipped")
    }

    /// Tenant-ticks per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return f64::INFINITY;
        }
        (self.tenants as u64 * self.ticks as u64) as f64 / secs
    }
}

/// The coordinator: owns assignment, dispatches shard commands, merges.
#[derive(Debug, Clone)]
pub struct RegionCoordinator {
    pub config: RegionConfig,
}

impl RegionCoordinator {
    pub fn new(config: RegionConfig) -> RegionCoordinator {
        RegionCoordinator { config }
    }

    /// The coordinator's tenant→shard mapping.
    pub fn assignment(&self) -> ShardAssignment {
        ShardAssignment::new(self.config.shards)
    }

    /// Drive the whole fleet for `ticks` passes through the shard tier.
    pub fn run(&self, spec: &dyn FleetSpec, ticks: u32) -> RegionReport {
        let start = std::time::Instant::now();
        let cfg = &self.config;
        let assignment = self.assignment();
        let gauge = Arc::new(HydrationGauge::new());
        let drivers: Vec<ShardDriver> = assignment
            .partition(spec.len())
            .into_iter()
            .enumerate()
            .map(|(shard, members)| ShardDriver {
                shard,
                members,
                driver: FleetDriver::new(cfg.driver.clone()),
                threads: cfg.threads_per_shard,
                hydration: cfg.hydration,
                chunk: cfg.chunk,
                retain_outcomes: cfg.retain_outcomes,
                event_retention: cfg.event_retention,
                gauge: gauge.clone(),
            })
            .collect();

        let command = ShardCommand::Drive { ticks };
        let reports: Vec<ShardReport> = match cfg.shard_concurrency {
            ShardConcurrency::Sequential => {
                drivers.iter().map(|d| d.execute(spec, command)).collect()
            }
            ShardConcurrency::Parallel => {
                let slots: Vec<Mutex<Option<ShardReport>>> =
                    drivers.iter().map(|_| Mutex::new(None)).collect();
                crossbeam::thread::scope(|scope| {
                    for (s, d) in drivers.iter().enumerate() {
                        let slots = &slots;
                        scope.spawn(move || {
                            *slots[s].lock().unwrap() = Some(d.execute(spec, command));
                        });
                    }
                });
                slots
                    .into_iter()
                    .map(|s| s.into_inner().unwrap().expect("shard slot filled"))
                    .collect()
            }
        };

        let sim_time = Duration::from_millis(cfg.driver.tick_interval.millis() * ticks as u64);
        self.merge(
            spec.len(),
            ticks,
            sim_time,
            reports,
            gauge.peak(),
            start.elapsed(),
        )
    }

    /// Fold shard reports (in shard order) into the region report. The
    /// per-tenant surfaces re-sort by global index, so the result is
    /// independent of how tenants were scattered across shards.
    fn merge(
        &self,
        tenants: usize,
        ticks: u32,
        sim_time: Duration,
        reports: Vec<ShardReport>,
        peak_hydrated: usize,
        elapsed: std::time::Duration,
    ) -> RegionReport {
        let cfg = &self.config;
        let mut digests: Vec<(usize, u64)> = Vec::with_capacity(tenants);
        let mut outcomes: Option<Vec<(usize, TenantOutcome)>> =
            cfg.retain_outcomes.then(|| Vec::with_capacity(tenants));
        let mut telemetry = Telemetry::new();
        let mut metrics = MetricsRegistry::new();
        let mut scheduler_metrics = MetricsRegistry::new();
        let mut by_state: BTreeMap<String, usize> = BTreeMap::new();
        let mut statements = 0u64;
        let mut errors = 0u64;
        let mut poisoned = 0usize;
        let mut quarantines = 0u64;
        let mut per_shard = Vec::with_capacity(reports.len());
        for report in reports {
            per_shard.push(ShardSummary {
                shard: report.shard,
                tenants: report.members,
                statements: report.statements,
                errors: report.errors,
                poisoned: report.poisoned,
                quarantines: report.quarantines,
                counters: report.telemetry.counters().clone(),
                elapsed: report.elapsed,
            });
            digests.extend(report.digests);
            if let (Some(acc), Some(part)) = (&mut outcomes, report.outcomes) {
                acc.extend(part);
            }
            telemetry.merge(&report.telemetry);
            telemetry.retain_recent(cfg.event_retention);
            metrics.merge(&report.metrics);
            scheduler_metrics.merge(&report.scheduler_metrics);
            for (state, n) in report.by_state {
                *by_state.entry(state).or_default() += n;
            }
            statements += report.statements;
            errors += report.errors;
            poisoned += report.poisoned;
            quarantines += report.quarantines;
        }

        // Canonical digest: per-tenant line hashes folded in *global*
        // fleet order, then the merged counters line — exactly
        // `FleetReport::canonical_digest`'s construction.
        digests.sort_unstable_by_key(|&(i, _)| i);
        let mut h = FNV_OFFSET;
        for &(_, line) in &digests {
            h = fnv1a64_extend(h, &line.to_le_bytes());
        }
        let digest = fnv1a64_extend(h, counters_line(&telemetry).as_bytes());

        let (canonical, outcomes) = match outcomes {
            None => (None, None),
            Some(mut pairs) => {
                pairs.sort_unstable_by_key(|&(i, _)| i);
                let ordered: Vec<TenantOutcome> = pairs.into_iter().map(|(_, o)| o).collect();
                let mut out = String::new();
                for o in &ordered {
                    out.push_str(&crate::fleet_driver::canonical_line(o));
                }
                out.push_str(&counters_line(&telemetry));
                (Some(out), Some(ordered))
            }
        };

        RegionReport {
            tenants,
            shards: cfg.shards,
            ticks,
            sim_time,
            digest,
            canonical,
            outcomes,
            telemetry,
            metrics,
            scheduler_metrics,
            by_state,
            statements,
            errors,
            poisoned,
            quarantines,
            peak_hydrated,
            per_shard,
            elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet_driver::SchedulingMode;
    use crate::plane::PlanePolicy;
    use workload::fleet::{MixedFleetSpec, TierMix};

    fn small_config(shards: usize) -> RegionConfig {
        RegionConfig {
            driver: FleetDriverConfig {
                policy: PlanePolicy {
                    analysis_interval: Duration::from_hours(2),
                    validation_min_wait: Duration::from_hours(1),
                    ..PlanePolicy::default()
                },
                scheduling: SchedulingMode::Sparse,
                ..FleetDriverConfig::default()
            },
            shards,
            ..RegionConfig::default()
        }
    }

    fn spec(n: usize, seed: u64) -> MixedFleetSpec {
        MixedFleetSpec::new(
            n,
            TierMix {
                basic: 1.0,
                standard: 0.0,
                premium: 0.0,
            },
            seed,
        )
    }

    #[test]
    fn sharded_matches_unsharded_oracle() {
        let spec = spec(6, 33);
        let oracle = FleetDriver::new(small_config(1).driver).run(spec.materialize(), 4, 1);
        for shards in [1usize, 3, 4] {
            let region = RegionCoordinator::new(small_config(shards)).run(&spec, 4);
            assert_eq!(region.digest, oracle.canonical_digest(), "{shards} shards");
            assert_eq!(
                region.canonical.as_deref(),
                Some(oracle.canonical_string().as_str()),
                "{shards} shards"
            );
            assert_eq!(region.dashboard().render(), oracle.dashboard().render());
        }
    }

    #[test]
    fn lazy_hydration_bounds_residency_and_matches_eager() {
        let spec = spec(6, 91);
        let eager = RegionCoordinator::new(small_config(3)).run(&spec, 3);
        let lazy = RegionCoordinator::new(RegionConfig {
            hydration: HydrationMode::Lazy,
            chunk: 2,
            ..small_config(3)
        })
        .run(&spec, 3);
        assert_eq!(lazy.digest, eager.digest);
        assert_eq!(lazy.canonical, eager.canonical);
        assert_eq!(
            lazy.peak_hydrated, 1,
            "sequential lazy single-thread hydrates one tenant at a time"
        );
        assert!(
            eager.peak_hydrated >= 2,
            "eager keeps a whole shard resident"
        );
    }

    #[test]
    fn parallel_shards_match_sequential() {
        let spec = spec(5, 12);
        let seq = RegionCoordinator::new(small_config(4)).run(&spec, 3);
        let par = RegionCoordinator::new(RegionConfig {
            shard_concurrency: ShardConcurrency::Parallel,
            hydration: HydrationMode::Lazy,
            ..small_config(4)
        })
        .run(&spec, 3);
        assert_eq!(seq.digest, par.digest);
        assert_eq!(seq.canonical, par.canonical);
        assert_eq!(
            seq.dashboard_with_scheduler().render(),
            par.dashboard_with_scheduler().render()
        );
    }
}
