//! Journaled recommendation-state store.
//!
//! The production control plane persists its state machine in a
//! highly-available database (§4). Here durability is modeled with an
//! append-only JSON journal: every mutation is journaled, and recovery
//! replays the journal into a fresh in-memory map. The fault-injection
//! tests crash the in-memory state and assert the journal reconstructs
//! it exactly.

use crate::state::{RecoId, TrackedReco};
use autoindex::Recommendation;
use sqlmini::clock::Timestamp;
use std::collections::BTreeMap;

/// One journal record.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
enum JournalEntry {
    Upsert(Box<TrackedReco>),
}

/// The state store: in-memory view + append-only journal.
#[derive(Debug, Default)]
pub struct StateStore {
    recos: BTreeMap<RecoId, TrackedReco>,
    next_id: u64,
    journal: Vec<String>,
}

impl StateStore {
    pub fn new() -> StateStore {
        StateStore::default()
    }

    /// A store whose [`RecoId`]s start at `base`. The fleet driver gives
    /// each tenant's shard-owned store a disjoint id block, so ids are
    /// unique fleet-wide and independent of thread interleaving.
    pub fn with_id_base(base: u64) -> StateStore {
        StateStore {
            next_id: base,
            ..StateStore::default()
        }
    }

    fn journal_upsert(&mut self, r: &TrackedReco) {
        let line = serde_json::to_string(&JournalEntry::Upsert(Box::new(r.clone())))
            .expect("reco serializes");
        self.journal.push(line);
    }

    /// Track a new recommendation (state: Active).
    pub fn insert(
        &mut self,
        database: impl Into<String>,
        recommendation: Recommendation,
        now: Timestamp,
    ) -> RecoId {
        let id = RecoId(self.next_id);
        self.next_id += 1;
        let tracked = TrackedReco::new(id, database, recommendation, now);
        self.journal_upsert(&tracked);
        self.recos.insert(id, tracked);
        id
    }

    pub fn get(&self, id: RecoId) -> Option<&TrackedReco> {
        self.recos.get(&id)
    }

    /// Mutate a recommendation through `f`; the updated record is
    /// journaled. Returns `f`'s result.
    pub fn update<T>(
        &mut self,
        id: RecoId,
        f: impl FnOnce(&mut TrackedReco) -> T,
    ) -> Option<T> {
        // Split borrow: mutate, then journal a clone.
        let out;
        let snapshot;
        match self.recos.get_mut(&id) {
            Some(r) => {
                out = f(r);
                snapshot = r.clone();
            }
            None => return None,
        }
        self.journal_upsert(&snapshot);
        Some(out)
    }

    /// All recommendations for one database.
    pub fn for_database<'a>(
        &'a self,
        database: &'a str,
    ) -> impl Iterator<Item = &'a TrackedReco> + 'a {
        self.recos.values().filter(move |r| r.database == database)
    }

    /// Non-terminal recommendations for one database.
    pub fn open_for_database<'a>(
        &'a self,
        database: &'a str,
    ) -> impl Iterator<Item = &'a TrackedReco> + 'a {
        self.for_database(database).filter(|r| !r.state.is_terminal())
    }

    pub fn all(&self) -> impl Iterator<Item = &TrackedReco> {
        self.recos.values()
    }

    /// Count by state (dashboard primitive).
    pub fn count_by_state(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for r in self.recos.values() {
            *m.entry(format!("{:?}", r.state)).or_default() += 1;
        }
        m
    }

    pub fn len(&self) -> usize {
        self.recos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.recos.is_empty()
    }

    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Simulate a control-plane crash: drop all in-memory state, then
    /// recover from the journal.
    pub fn crash_and_recover(&mut self) {
        let journal = std::mem::take(&mut self.journal);
        self.recos.clear();
        self.next_id = 0;
        for line in &journal {
            let entry: JournalEntry = serde_json::from_str(line).expect("journal intact");
            match entry {
                JournalEntry::Upsert(r) => {
                    self.next_id = self.next_id.max(r.id.0 + 1);
                    self.recos.insert(r.id, *r);
                }
            }
        }
        self.journal = journal;
    }

    /// Recommendations stuck in a non-terminal state since before
    /// `horizon` (health detection input).
    pub fn stuck_since(&self, horizon: Timestamp) -> Vec<RecoId> {
        self.recos
            .values()
            .filter(|r| {
                !r.state.is_terminal()
                    && r.history
                        .last()
                        .map(|t| t.at)
                        .unwrap_or(r.created_at)
                        < horizon
            })
            .map(|r| r.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::RecoState;
    use autoindex::{RecoAction, RecoSource};
    use sqlmini::schema::{ColumnId, IndexDef, TableId};

    fn reco(n: u32) -> Recommendation {
        Recommendation {
            action: RecoAction::CreateIndex {
                def: IndexDef::new(format!("ix{n}"), TableId(0), vec![ColumnId(1)], vec![]),
            },
            source: RecoSource::MissingIndex,
            estimated_benefit: n as f64,
            estimated_improvement: 0.5,
            estimated_size_bytes: 100,
            impacted_queries: vec![],
            generated_at: Timestamp(0),
        }
    }

    #[test]
    fn insert_get_update() {
        let mut s = StateStore::new();
        let id = s.insert("db1", reco(1), Timestamp(0));
        assert_eq!(s.get(id).unwrap().state, RecoState::Active);
        s.update(id, |r| {
            r.transition(RecoState::Implementing, Timestamp(5), "go").unwrap()
        })
        .unwrap();
        assert_eq!(s.get(id).unwrap().state, RecoState::Implementing);
        assert_eq!(s.journal_len(), 2);
    }

    #[test]
    fn recovery_restores_state() {
        let mut s = StateStore::new();
        let a = s.insert("db1", reco(1), Timestamp(0));
        let b = s.insert("db2", reco(2), Timestamp(1));
        s.update(a, |r| {
            r.transition(RecoState::Implementing, Timestamp(2), "").unwrap();
            r.transition(RecoState::Validating, Timestamp(3), "").unwrap();
        });
        let before: Vec<(RecoId, RecoState)> =
            s.all().map(|r| (r.id, r.state)).collect();
        s.crash_and_recover();
        let after: Vec<(RecoId, RecoState)> = s.all().map(|r| (r.id, r.state)).collect();
        assert_eq!(before, after);
        assert_eq!(s.get(a).unwrap().history.len(), 2, "history survives");
        assert_eq!(s.get(b).unwrap().state, RecoState::Active);
        // New ids continue after the recovered maximum.
        let c = s.insert("db3", reco(3), Timestamp(9));
        assert!(c.0 > b.0);
    }

    #[test]
    fn per_database_filtering() {
        let mut s = StateStore::new();
        s.insert("db1", reco(1), Timestamp(0));
        s.insert("db1", reco(2), Timestamp(0));
        let done = s.insert("db1", reco(3), Timestamp(0));
        s.insert("db2", reco(4), Timestamp(0));
        s.update(done, |r| {
            r.transition(RecoState::Expired, Timestamp(1), "").unwrap()
        });
        assert_eq!(s.for_database("db1").count(), 3);
        assert_eq!(s.open_for_database("db1").count(), 2);
        assert_eq!(s.for_database("db2").count(), 1);
    }

    #[test]
    fn stuck_detection() {
        let mut s = StateStore::new();
        let old = s.insert("db1", reco(1), Timestamp(0));
        let fresh = s.insert("db1", reco(2), Timestamp(10_000));
        let stuck = s.stuck_since(Timestamp(5_000));
        assert!(stuck.contains(&old));
        assert!(!stuck.contains(&fresh));
        // Terminal records are never stuck.
        s.update(old, |r| {
            r.transition(RecoState::Expired, Timestamp(20_000), "").unwrap()
        });
        assert!(s.stuck_since(Timestamp(50_000)).is_empty() || !s
            .stuck_since(Timestamp(50_000))
            .contains(&old));
    }

    #[test]
    fn count_by_state_summary() {
        let mut s = StateStore::new();
        s.insert("db1", reco(1), Timestamp(0));
        let b = s.insert("db1", reco(2), Timestamp(0));
        s.update(b, |r| {
            r.transition(RecoState::Implementing, Timestamp(1), "").unwrap()
        });
        let counts = s.count_by_state();
        assert_eq!(counts.get("Active"), Some(&1));
        assert_eq!(counts.get("Implementing"), Some(&1));
    }
}
