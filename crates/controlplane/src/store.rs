//! Journaled recommendation-state store.
//!
//! The production control plane persists its state machine in a
//! highly-available database (§4). Here durability is modeled with an
//! append-only journal of checksummed, length-prefixed JSON records:
//! every mutation is journaled, and recovery replays the journal into a
//! fresh in-memory map. Crash consistency is the point — a torn or
//! corrupt tail is truncated (never a panic), recovery reports what was
//! dropped, and any recommendation caught mid-`Implementing` or
//! mid-`Reverting` is re-parked in the paper's Retry state rather than
//! silently resumed, because the crash may or may not have completed
//! the underlying engine action.
//!
//! # Checkpointing and compaction
//!
//! Append-only forever means replay cost and journal size grow with
//! history, making long-lived tenants the *least* recoverable ones. A
//! [`JournalEntry::Checkpoint`] frame snapshots the whole canonical
//! store state under the same framing as every other record; when the
//! [`CompactionPolicy`] trigger fires, [`StateStore::compact`] appends
//! a fresh checkpoint and truncates everything *before the previous
//! checkpoint*. Keeping the previous checkpoint makes a damaged latest
//! checkpoint lossless: every logical frame since the previous one is
//! still present, so recovery falls back one rung on the ladder —
//! latest checkpoint → previous checkpoint → full replay — and loses
//! nothing. Checkpoint frames are pure redundancy, never the only copy
//! of any state.

use crate::flight::FlightRecord;
use crate::stages::WakeSchedule;
use crate::state::{RecoId, TrackedReco};
use autoindex::Recommendation;
use sqlmini::clock::Timestamp;
use std::collections::BTreeMap;

/// One journal record.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
enum JournalEntry {
    Upsert(Box<TrackedReco>),
    /// Store metadata: the id-allocation base. Journaled once at store
    /// creation so a recovered shard keeps its fleet-wide disjoint id
    /// block even when the journal holds no (or few) recommendations.
    Meta {
        id_base: u64,
    },
    /// The wake schedule computed at the end of a tick. Journaled only
    /// when it changes, so a recovered store hands the fleet driver the
    /// exact due-time index the crashed process was operating under.
    Schedule {
        database: String,
        schedule: WakeSchedule,
    },
    /// A full snapshot of canonical store state, written by compaction.
    /// Recovery restores from the newest intact checkpoint and replays
    /// only the tail after it.
    Checkpoint(Box<CheckpointState>),
    /// A policy-flight state transition (§7): started, per-tenant
    /// verdicts as they land, and the terminal ship/abort decision.
    /// Journaled on every change so a crash mid-flight recovers the
    /// completed verdicts and resumes to the same region decision.
    Flight(Box<FlightRecord>),
}

/// Everything a checkpoint must carry to make the prefix before it
/// disposable: the tracked recommendations, the wake schedules, the
/// id-allocation state, and the cumulative recovery counters (which
/// must survive full process restarts, not just in-memory crashes).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct CheckpointState {
    recos: Vec<TrackedReco>,
    schedules: BTreeMap<String, WakeSchedule>,
    flights: BTreeMap<String, FlightRecord>,
    id_base: u64,
    next_id: u64,
    writes_total: u64,
    recoveries: u64,
    truncated_total: u64,
    reparked_total: u64,
}

/// When the journal gets compacted. Lives on
/// [`PlanePolicy`](crate::plane::PlanePolicy) as `journal`; the store
/// itself stays policy-free (the trigger check takes the policy as an
/// argument), so replacing a plane's store never desynchronizes policy.
///
/// The trigger is deterministic in journaled state only —
/// `appends_since_checkpoint >= max(min_frames, ⌈garbage_ratio × live⌉)`
/// where `live` counts tracked recommendations + schedules + 1 — so
/// serial, parallel, and sparse replays compact at identical points.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CompactionPolicy {
    /// Master switch; `false` restores the append-only-forever behavior
    /// (the differential oracle for the equivalence proofs).
    pub enabled: bool,
    /// Never compact before this many logical appends accumulated since
    /// the last checkpoint — a floor that stops tiny stores from
    /// checkpointing on every other write.
    pub min_frames: usize,
    /// Compact once the appends since the last checkpoint exceed this
    /// multiple of the live-entry count — i.e. once replaying the tail
    /// costs more than this factor over re-reading a snapshot.
    pub garbage_ratio: f64,
}

impl Default for CompactionPolicy {
    fn default() -> CompactionPolicy {
        CompactionPolicy {
            enabled: true,
            min_frames: 64,
            garbage_ratio: 2.0,
        }
    }
}

/// Cumulative checkpoint/compaction counters for one store — driver
/// bookkeeping (non-canonical), surfaced in the §8.1 journal/recovery
/// dashboard block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Checkpoint frames written by compaction.
    pub checkpoints_written: u64,
    /// Journal frames truncated away by compaction.
    pub frames_compacted: u64,
    /// Journal bytes reclaimed by compaction.
    pub bytes_reclaimed: u64,
    /// Recoveries that could not use the newest checkpoint and stepped
    /// down the fallback ladder.
    pub fallback_recoveries: u64,
    /// Mid-journal corrupt frames skipped (as opposed to torn tails).
    pub corrupt_frames: u64,
}

/// FNV-1a over the payload bytes — the journal frame checksum.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Frame a journal payload: `<len-hex>|<fnv1a-hex>|<payload>`. The
/// length prefix catches torn (short) writes, the checksum catches
/// bit-rot and mid-record corruption.
fn frame(payload: &str) -> String {
    format!(
        "{:08x}|{:08x}|{}",
        payload.len(),
        fnv1a32(payload.as_bytes()),
        payload
    )
}

/// Validate a frame and return its payload, or `None` if the record is
/// torn (short/garbled prefix) or corrupt (checksum mismatch).
fn parse_frame(line: &str) -> Option<&str> {
    let (len_hex, rest) = line.split_once('|')?;
    let (crc_hex, payload) = rest.split_once('|')?;
    let len = usize::from_str_radix(len_hex, 16).ok()?;
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    if payload.len() != len || fnv1a32(payload.as_bytes()) != crc {
        return None;
    }
    Some(payload)
}

/// Cheap structural test (no checksum work): does this frame's payload
/// start like a checkpoint record? Used by the backward recovery scan to
/// touch only checkpoint candidates, and to classify damaged frames
/// that *were* checkpoints (a frame torn shorter than the marker simply
/// counts as ordinary corruption — recovery is still correct, only the
/// fallback attribution is lost).
fn looks_like_checkpoint(line: &str) -> bool {
    line.splitn(3, '|')
        .nth(2)
        .is_some_and(|payload| payload.starts_with("{\"Checkpoint\""))
}

/// What one [`StateStore::crash_and_recover`] pass did.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RecoveryReport {
    /// Journal entries successfully replayed (a restored checkpoint
    /// counts as one).
    pub replayed: usize,
    /// Entries dropped from the tail (the maximal invalid suffix).
    pub truncated: usize,
    /// True when truncation happened because a record failed frame or
    /// checksum validation (as opposed to a clean, complete journal).
    pub torn_tail: bool,
    /// Invalid frames found *mid*-journal — an intact frame follows
    /// them, so they are bit-rot or a damaged checkpoint, not a torn
    /// tail. Skipped and dropped from the rebuilt journal; safe because
    /// upserts carry absolute state, schedules self-heal on the next
    /// pass, and checkpoints are redundant by construction.
    pub corrupt_mid: usize,
    /// Recommendations found mid-`Implementing`/`Reverting` and
    /// re-parked into Retry.
    pub reparked: Vec<RecoId>,
    /// The recovered id-allocation base.
    pub id_base: u64,
    /// The next id the recovered store will allocate.
    pub next_id: u64,
    /// True when recovery restored from a checkpoint (plus tail replay)
    /// instead of replaying the whole journal.
    pub checkpoint_used: bool,
    /// True when at least one checkpoint frame was torn or corrupt and
    /// recovery stepped down the ladder (previous checkpoint, or full
    /// replay). Lossless by the keep-previous-checkpoint invariant, but
    /// reported — it means a checkpoint write died mid-flight.
    pub checkpoint_fallback: bool,
    /// Frames read (validated) during recovery — the bounded-replay cost
    /// metric: with compaction this stays ≈ checkpoint + tail while the
    /// uncompacted baseline reads the entire history.
    pub frame_reads: usize,
    /// Databases whose stale wake schedule was rewritten to the
    /// conservative [`WakeSchedule::immediate`] because a re-park
    /// invalidated it. Journaled (like the re-park itself), so repeated
    /// recoveries — from a checkpoint or from full replay — converge on
    /// the same schedule instead of resurrecting the stale one.
    pub rescheduled: usize,
}

/// The state store: in-memory view + append-only journal.
#[derive(Debug, Default)]
pub struct StateStore {
    recos: BTreeMap<RecoId, TrackedReco>,
    next_id: u64,
    id_base: u64,
    journal: Vec<String>,
    /// Last recorded wake schedule per database (journaled on change).
    schedules: BTreeMap<String, WakeSchedule>,
    /// Latest journaled state per flight id (journaled on change).
    flights: BTreeMap<String, FlightRecord>,
    last_recovery: Option<RecoveryReport>,
    /// Cumulative chaos counters (survive across recoveries).
    recoveries: u64,
    truncated_total: u64,
    reparked_total: u64,
    /// Logical journal appends ever made (Upsert/Meta/Schedule, NOT
    /// checkpoint frames). Monotonic: unlike `journal.len()` it survives
    /// compaction, truncation, and crash-recovery, which makes it the
    /// canonical write-traffic proxy — identical between compaction-on
    /// and compaction-off runs by construction.
    writes_total: u64,
    /// Index of the newest checkpoint frame in `journal`, if any.
    last_checkpoint: Option<usize>,
    /// Logical appends since the last checkpoint (compaction trigger).
    appends_since_checkpoint: usize,
    /// Compaction/fallback bookkeeping (see [`CheckpointStats`]).
    checkpoints_written: u64,
    frames_compacted: u64,
    bytes_reclaimed: u64,
    fallback_recoveries: u64,
    corrupt_frames_total: u64,
}

impl StateStore {
    pub fn new() -> StateStore {
        StateStore::default()
    }

    /// A store whose [`RecoId`]s start at `base`. The fleet driver gives
    /// each tenant's shard-owned store a disjoint id block, so ids are
    /// unique fleet-wide and independent of thread interleaving. The
    /// base is journaled so recovery preserves the block (a recovered
    /// shard must never re-allocate from 0 and collide fleet-wide).
    pub fn with_id_base(base: u64) -> StateStore {
        let mut s = StateStore {
            next_id: base,
            id_base: base,
            ..StateStore::default()
        };
        if base > 0 {
            s.append(&JournalEntry::Meta { id_base: base });
        }
        s
    }

    /// Append one logical record under framing, counting it toward the
    /// monotonic write total and the compaction trigger.
    fn append(&mut self, entry: &JournalEntry) {
        let line = serde_json::to_string(entry).expect("journal entry serializes");
        self.journal.push(frame(&line));
        self.writes_total += 1;
        self.appends_since_checkpoint += 1;
    }

    fn journal_upsert(&mut self, r: &TrackedReco) {
        self.append(&JournalEntry::Upsert(Box::new(r.clone())));
    }

    /// Track a new recommendation (state: Active).
    pub fn insert(
        &mut self,
        database: impl Into<String>,
        recommendation: Recommendation,
        now: Timestamp,
    ) -> RecoId {
        let id = RecoId(self.next_id);
        self.next_id += 1;
        let tracked = TrackedReco::new(id, database, recommendation, now);
        self.journal_upsert(&tracked);
        self.recos.insert(id, tracked);
        id
    }

    pub fn get(&self, id: RecoId) -> Option<&TrackedReco> {
        self.recos.get(&id)
    }

    /// Mutate a recommendation through `f`; the updated record is
    /// journaled. Returns `f`'s result.
    pub fn update<T>(&mut self, id: RecoId, f: impl FnOnce(&mut TrackedReco) -> T) -> Option<T> {
        // Split borrow: mutate, then journal a clone.
        let out;
        let snapshot;
        match self.recos.get_mut(&id) {
            Some(r) => {
                out = f(r);
                snapshot = r.clone();
            }
            None => return None,
        }
        self.journal_upsert(&snapshot);
        Some(out)
    }

    /// Record a database's end-of-tick wake schedule. Journaled only
    /// when it differs from the last recorded one: a no-op tick
    /// recomputes an identical schedule and must not grow the journal
    /// (the sparse/dense equivalence proof leans on this).
    pub fn record_schedule(&mut self, database: &str, schedule: &WakeSchedule) {
        if self.schedules.get(database) == Some(schedule) {
            return;
        }
        self.append(&JournalEntry::Schedule {
            database: database.to_string(),
            schedule: *schedule,
        });
        self.schedules.insert(database.to_string(), *schedule);
    }

    /// The last recorded wake schedule for a database (journal-backed:
    /// survives [`StateStore::crash_and_recover`]).
    pub fn schedule(&self, database: &str) -> Option<&WakeSchedule> {
        self.schedules.get(database)
    }

    /// Record a flight state transition. Journaled only when it differs
    /// from the last recorded state for the same flight id, so replaying
    /// an already-journaled transition (resume after a crash) does not
    /// grow the journal.
    pub fn record_flight(&mut self, rec: &FlightRecord) {
        if self.flights.get(&rec.id) == Some(rec) {
            return;
        }
        self.append(&JournalEntry::Flight(Box::new(rec.clone())));
        self.flights.insert(rec.id.clone(), rec.clone());
    }

    /// The last journaled state of a flight (journal-backed: survives
    /// [`StateStore::crash_and_recover`]).
    pub fn flight(&self, id: &str) -> Option<&FlightRecord> {
        self.flights.get(id)
    }

    /// All journaled flights, by id.
    pub fn flights(&self) -> &BTreeMap<String, FlightRecord> {
        &self.flights
    }

    /// All recommendations for one database.
    pub fn for_database<'a>(
        &'a self,
        database: &'a str,
    ) -> impl Iterator<Item = &'a TrackedReco> + 'a {
        self.recos.values().filter(move |r| r.database == database)
    }

    /// Non-terminal recommendations for one database.
    pub fn open_for_database<'a>(
        &'a self,
        database: &'a str,
    ) -> impl Iterator<Item = &'a TrackedReco> + 'a {
        self.for_database(database)
            .filter(|r| !r.state.is_terminal())
    }

    pub fn all(&self) -> impl Iterator<Item = &TrackedReco> {
        self.recos.values()
    }

    /// Count by state (dashboard primitive).
    pub fn count_by_state(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for r in self.recos.values() {
            *m.entry(format!("{:?}", r.state)).or_default() += 1;
        }
        m
    }

    pub fn len(&self) -> usize {
        self.recos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.recos.is_empty()
    }

    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Total journal size in bytes — the quantity compaction bounds
    /// (append-only-forever grows this linearly with history).
    pub fn journal_bytes(&self) -> usize {
        self.journal.iter().map(String::len).sum()
    }

    /// Logical journal appends ever made — monotonic across compaction,
    /// truncation, and crash-recovery (checkpoint frames excluded). The
    /// canonical write-traffic proxy.
    pub fn journal_writes(&self) -> u64 {
        self.writes_total
    }

    /// The raw framed journal lines (chaos-test surface).
    pub fn journal_lines(&self) -> &[String] {
        &self.journal
    }

    /// Drop the last `n` journal records — models writes the crashed
    /// process acknowledged in memory but never made durable.
    pub fn tear_journal_tail(&mut self, n: usize) {
        let keep = self.journal.len().saturating_sub(n);
        self.journal.truncate(keep);
        self.last_checkpoint = self.journal.iter().rposition(|l| looks_like_checkpoint(l));
    }

    /// Mangle journal record `i` — models bit-rot or a record torn
    /// mid-write. Works anywhere in the journal (including checkpoint
    /// frames), so mid-journal corruption and checkpoint-fallback paths
    /// are testable, not just the final record. The frame's length
    /// prefix and checksum make the damage detectable on recovery.
    pub fn corrupt_journal_frame(&mut self, i: usize) {
        if let Some(line) = self.journal.get_mut(i) {
            let mut k = line.len() / 2;
            while k > 0 && !line.is_char_boundary(k) {
                k -= 1;
            }
            line.truncate(k);
        }
    }

    /// Mangle the final journal record — the classic torn-tail shape.
    pub fn corrupt_journal_tail(&mut self) {
        if !self.journal.is_empty() {
            self.corrupt_journal_frame(self.journal.len() - 1);
        }
    }

    /// Mangle the newest checkpoint frame — models the process dying
    /// mid-checkpoint-write ([`FaultPoint::CheckpointTear`]
    /// (crate::faults::FaultPoint::CheckpointTear)). Recovery must step
    /// down the fallback ladder, losing nothing.
    pub fn corrupt_last_checkpoint(&mut self) {
        if let Some(i) = self.last_checkpoint {
            self.corrupt_journal_frame(i);
        }
    }

    /// Does the compaction trigger fire? Deterministic in journaled
    /// state only: serial/parallel/sparse replays agree.
    pub fn should_compact(&self, policy: &CompactionPolicy) -> bool {
        if !policy.enabled {
            return false;
        }
        let live = self.recos.len() + self.schedules.len() + self.flights.len() + 1;
        let by_ratio = (policy.garbage_ratio.max(0.0) * live as f64).ceil() as usize;
        self.appends_since_checkpoint >= policy.min_frames.max(1).max(by_ratio)
    }

    /// Write a checkpoint frame and truncate the prefix before the
    /// *previous* checkpoint. Keeping one full checkpoint-to-checkpoint
    /// interval behind the new snapshot is what makes a torn latest
    /// checkpoint lossless: the ladder steps back to the previous
    /// checkpoint and re-replays the (still present) interval. Returns
    /// `(frames truncated, bytes reclaimed)`.
    pub fn compact(&mut self) -> (usize, u64) {
        let state = CheckpointState {
            recos: self.recos.values().cloned().collect(),
            schedules: self.schedules.clone(),
            flights: self.flights.clone(),
            id_base: self.id_base,
            next_id: self.next_id,
            writes_total: self.writes_total,
            recoveries: self.recoveries,
            truncated_total: self.truncated_total,
            reparked_total: self.reparked_total,
        };
        let line = serde_json::to_string(&JournalEntry::Checkpoint(Box::new(state)))
            .expect("checkpoint serializes");
        let cut = self.last_checkpoint.unwrap_or(0);
        let bytes: u64 = self.journal[..cut].iter().map(|l| l.len() as u64).sum();
        self.journal.drain(..cut);
        self.journal.push(frame(&line));
        self.last_checkpoint = Some(self.journal.len() - 1);
        self.appends_since_checkpoint = 0;
        self.checkpoints_written += 1;
        self.frames_compacted += cut as u64;
        self.bytes_reclaimed += bytes;
        (cut, bytes)
    }

    /// Compact iff the policy trigger fires. Returns whether it did.
    pub fn maybe_compact(&mut self, policy: &CompactionPolicy) -> bool {
        if self.should_compact(policy) {
            self.compact();
            true
        } else {
            false
        }
    }

    /// What the most recent recovery replayed, truncated, and re-parked.
    pub fn recover_report(&self) -> Option<&RecoveryReport> {
        self.last_recovery.as_ref()
    }

    /// Cumulative chaos counters: (recoveries, truncated entries,
    /// re-parked recommendations) since the store was created.
    pub fn recovery_stats(&self) -> (u64, u64, u64) {
        (self.recoveries, self.truncated_total, self.reparked_total)
    }

    /// Cumulative checkpoint/compaction counters.
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        CheckpointStats {
            checkpoints_written: self.checkpoints_written,
            frames_compacted: self.frames_compacted,
            bytes_reclaimed: self.bytes_reclaimed,
            fallback_recoveries: self.fallback_recoveries,
            corrupt_frames: self.corrupt_frames_total,
        }
    }

    /// Restore maps, id state, and cumulative counters from a decoded
    /// checkpoint snapshot.
    fn restore_checkpoint(&mut self, state: CheckpointState) {
        self.recos = state.recos.into_iter().map(|r| (r.id, r)).collect();
        self.schedules = state.schedules;
        self.flights = state.flights;
        self.id_base = state.id_base;
        self.next_id = state.next_id;
        self.writes_total = state.writes_total;
        self.recoveries = state.recoveries;
        self.truncated_total = state.truncated_total;
        self.reparked_total = state.reparked_total;
    }

    /// Build a store by replaying framed journal lines.
    ///
    /// Recovery first scans *backward* for the newest intact checkpoint
    /// (touching only checkpoint-shaped frames), restores it, then
    /// replays the tail after it — so frame reads stay ≈ checkpoint +
    /// tail instead of the full history. Invalid tail frames are
    /// classified: the maximal invalid *suffix* is a torn tail and is
    /// truncated (the durable prefix wins); an invalid frame with an
    /// intact frame after it is mid-journal corruption, which is
    /// skipped and reported distinctly instead of costing the whole
    /// suffix. A torn/corrupt checkpoint makes recovery fall back to
    /// the previous checkpoint or full replay — lossless, because
    /// compaction always keeps the previous checkpoint's interval.
    /// Never panics. Mid-flight recommendations (`Implementing`,
    /// `Reverting`) are re-parked into Retry, with the re-park
    /// journaled so a second crash recovers to the same place.
    pub fn recovered_from(journal: Vec<String>) -> (StateStore, RecoveryReport) {
        let mut s = StateStore::default();
        let mut report = RecoveryReport::default();
        let mut frame_reads = 0usize;

        // Phase 1: backward scan for the newest intact checkpoint.
        let mut base: Option<usize> = None;
        for i in (0..journal.len()).rev() {
            if !looks_like_checkpoint(&journal[i]) {
                continue;
            }
            frame_reads += 1;
            let entry = parse_frame(&journal[i])
                .and_then(|payload| serde_json::from_str::<JournalEntry>(payload).ok());
            match entry {
                Some(JournalEntry::Checkpoint(state)) => {
                    s.restore_checkpoint(*state);
                    report.replayed += 1;
                    report.checkpoint_used = true;
                    base = Some(i);
                    break;
                }
                // Damaged would-be checkpoint: step down the ladder and
                // keep scanning for an older intact one.
                _ => report.checkpoint_fallback = true,
            }
        }
        let start = base.map_or(0, |i| i + 1);

        // Phase 2: validate the tail once, classifying invalid frames.
        let tail: Vec<Option<JournalEntry>> = journal[start..]
            .iter()
            .map(|line| {
                frame_reads += 1;
                parse_frame(line)
                    .and_then(|payload| serde_json::from_str::<JournalEntry>(payload).ok())
            })
            .collect();
        let keep = tail.iter().rposition(Option::is_some).map_or(0, |i| i + 1);
        report.truncated = tail.len() - keep;
        report.torn_tail = report.truncated > 0;

        // Phase 3: replay the kept tail, rebuilding the journal from the
        // verbatim prefix (≤ previous checkpoint .. base) + intact tail.
        let mut rebuilt: Vec<String> = journal[..start].to_vec();
        for (j, entry) in tail.into_iter().take(keep).enumerate() {
            let Some(entry) = entry else {
                report.corrupt_mid += 1;
                if looks_like_checkpoint(&journal[start + j]) {
                    report.checkpoint_fallback = true;
                }
                continue;
            };
            match entry {
                JournalEntry::Upsert(r) => {
                    s.next_id = s.next_id.max(r.id.0 + 1);
                    s.recos.insert(r.id, *r);
                }
                JournalEntry::Meta { id_base } => {
                    s.id_base = s.id_base.max(id_base);
                }
                JournalEntry::Schedule { database, schedule } => {
                    s.schedules.insert(database, schedule);
                }
                JournalEntry::Flight(rec) => {
                    s.flights.insert(rec.id.clone(), *rec);
                }
                // Unreachable (the backward scan would have picked it as
                // the base), but harmless: treat it as a newer snapshot.
                JournalEntry::Checkpoint(state) => {
                    s.restore_checkpoint(*state);
                    rebuilt.push(journal[start + j].clone());
                    report.replayed += 1;
                    continue;
                }
            }
            s.writes_total += 1;
            report.replayed += 1;
            rebuilt.push(journal[start + j].clone());
        }
        s.journal = rebuilt;
        s.last_checkpoint = s.journal.iter().rposition(|l| looks_like_checkpoint(l));
        s.appends_since_checkpoint = s
            .last_checkpoint
            .map_or(s.journal.len(), |i| s.journal.len() - i - 1);
        s.next_id = s.next_id.max(s.id_base);
        report.frame_reads = frame_reads;

        // Re-park anything the crash caught mid-operation: the engine
        // action may or may not have completed, so the only safe state
        // is Retry — the retry path re-drives or terminally parks it.
        let mid: Vec<_> = s
            .recos
            .values()
            .filter_map(|r| {
                r.state.retry_phase().map(|phase| {
                    let at = r.history.last().map(|t| t.at).unwrap_or(r.created_at);
                    (r.id, phase, at)
                })
            })
            .collect();
        for (id, phase, at) in mid {
            // The re-park gives the reco a retry deadline the journaled
            // schedule never saw — that schedule is stale now, and a
            // sparse driver trusting it could sleep through the retry.
            // Rewrite it to the conservative wake-everything-next-tick
            // schedule, *journaled*: an in-memory drop would resurrect
            // the stale schedule on the next recovery (checkpoint
            // snapshots and retained Schedule frames both remember it),
            // making recovery non-idempotent.
            if let Some(db) = s.recos.get(&id).map(|r| r.database.clone()) {
                if s.schedules.contains_key(&db) {
                    let before = s.journal.len();
                    s.record_schedule(&db, &WakeSchedule::immediate());
                    if s.journal.len() > before {
                        report.rescheduled += 1;
                    }
                }
            }
            s.update(id, |r| {
                let _ = r.enter_retry(phase, at, "re-parked by crash recovery");
            });
            report.reparked.push(id);
        }
        report.id_base = s.id_base;
        report.next_id = s.next_id;
        (s, report)
    }

    /// Simulate a control-plane crash: drop all in-memory state, then
    /// recover from the journal. Tolerates torn tails, mid-journal
    /// corruption, and damaged checkpoints (see
    /// [`StateStore::recovered_from`]); the outcome is described by the
    /// returned [`RecoveryReport`] and retained for
    /// [`StateStore::recover_report`]. The monotonic write and
    /// checkpoint counters are this store's own (cumulative across
    /// recoveries), not reset to the recovered snapshot's.
    pub fn crash_and_recover(&mut self) -> RecoveryReport {
        let journal = std::mem::take(&mut self.journal);
        let (recovered, report) = StateStore::recovered_from(journal);
        self.recos = recovered.recos;
        self.next_id = recovered.next_id;
        self.id_base = recovered.id_base;
        self.journal = recovered.journal;
        self.schedules = recovered.schedules;
        self.flights = recovered.flights;
        self.last_checkpoint = recovered.last_checkpoint;
        self.appends_since_checkpoint = recovered.appends_since_checkpoint;
        // `writes_total` stays monotonic across the simulated crash
        // (torn frames were still writes the process attempted); only
        // the re-park and schedule-rewrite writes recovery just
        // appended are new.
        self.writes_total += (report.reparked.len() + report.rescheduled) as u64;
        self.recoveries += 1;
        self.truncated_total += report.truncated as u64;
        self.reparked_total += report.reparked.len() as u64;
        self.corrupt_frames_total += report.corrupt_mid as u64;
        if report.checkpoint_fallback {
            self.fallback_recoveries += 1;
        }
        self.last_recovery = Some(report.clone());
        report
    }

    /// Recommendations stuck in a non-terminal state since before
    /// `horizon` (health detection input).
    pub fn stuck_since(&self, horizon: Timestamp) -> Vec<RecoId> {
        self.recos
            .values()
            .filter(|r| {
                !r.state.is_terminal()
                    && r.history.last().map(|t| t.at).unwrap_or(r.created_at) < horizon
            })
            .map(|r| r.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::RecoState;
    use autoindex::{RecoAction, RecoSource};
    use sqlmini::schema::{ColumnId, IndexDef, TableId};

    fn reco(n: u32) -> Recommendation {
        Recommendation {
            action: RecoAction::CreateIndex {
                def: IndexDef::new(format!("ix{n}"), TableId(0), vec![ColumnId(1)], vec![]),
            },
            source: RecoSource::MissingIndex,
            estimated_benefit: n as f64,
            estimated_improvement: 0.5,
            estimated_size_bytes: 100,
            impacted_queries: vec![],
            generated_at: Timestamp(0),
        }
    }

    #[test]
    fn insert_get_update() {
        let mut s = StateStore::new();
        let id = s.insert("db1", reco(1), Timestamp(0));
        assert_eq!(s.get(id).unwrap().state, RecoState::Active);
        s.update(id, |r| {
            r.transition(RecoState::Implementing, Timestamp(5), "go")
                .unwrap()
        })
        .unwrap();
        assert_eq!(s.get(id).unwrap().state, RecoState::Implementing);
        assert_eq!(s.journal_len(), 2);
    }

    #[test]
    fn recovery_restores_state() {
        let mut s = StateStore::new();
        let a = s.insert("db1", reco(1), Timestamp(0));
        let b = s.insert("db2", reco(2), Timestamp(1));
        s.update(a, |r| {
            r.transition(RecoState::Implementing, Timestamp(2), "")
                .unwrap();
            r.transition(RecoState::Validating, Timestamp(3), "")
                .unwrap();
        });
        let before: Vec<(RecoId, RecoState)> = s.all().map(|r| (r.id, r.state)).collect();
        s.crash_and_recover();
        let after: Vec<(RecoId, RecoState)> = s.all().map(|r| (r.id, r.state)).collect();
        assert_eq!(before, after);
        assert_eq!(s.get(a).unwrap().history.len(), 2, "history survives");
        assert_eq!(s.get(b).unwrap().state, RecoState::Active);
        // New ids continue after the recovered maximum.
        let c = s.insert("db3", reco(3), Timestamp(9));
        assert!(c.0 > b.0);
    }

    #[test]
    fn recovery_of_empty_journal_is_clean() {
        // A store that never journaled anything (fresh process, crash
        // before first write) must recover to an empty store without
        // reporting a torn tail.
        let (s, report) = StateStore::recovered_from(Vec::new());
        assert!(s.is_empty());
        assert_eq!(s.journal_len(), 0);
        assert_eq!(report, RecoveryReport::default());
        // And an in-place crash of a never-written store is a no-op.
        let mut fresh = StateStore::new();
        let r = fresh.crash_and_recover();
        assert!(!r.torn_tail);
        assert!(fresh.is_empty());
    }

    #[test]
    fn recovery_when_only_frame_is_truncated() {
        // The very first journal record is torn mid-write: recovery must
        // drop it (empty durable prefix), flag the torn tail, and leave
        // a usable empty store — not panic or resurrect half a record.
        let mut s = StateStore::new();
        s.insert("db1", reco(1), Timestamp(0));
        assert_eq!(s.journal_len(), 1);
        s.corrupt_journal_tail();
        let journal = s.journal_lines().to_vec();
        let (recovered, report) = StateStore::recovered_from(journal);
        assert!(report.torn_tail);
        assert_eq!(report.replayed, 0);
        assert_eq!(report.truncated, 1);
        assert!(recovered.is_empty(), "no durable prefix to restore");
        assert_eq!(recovered.journal_len(), 0, "torn record not re-journaled");
    }

    #[test]
    fn per_database_filtering() {
        let mut s = StateStore::new();
        s.insert("db1", reco(1), Timestamp(0));
        s.insert("db1", reco(2), Timestamp(0));
        let done = s.insert("db1", reco(3), Timestamp(0));
        s.insert("db2", reco(4), Timestamp(0));
        s.update(done, |r| {
            r.transition(RecoState::Expired, Timestamp(1), "").unwrap()
        });
        assert_eq!(s.for_database("db1").count(), 3);
        assert_eq!(s.open_for_database("db1").count(), 2);
        assert_eq!(s.for_database("db2").count(), 1);
    }

    #[test]
    fn stuck_detection() {
        let mut s = StateStore::new();
        let old = s.insert("db1", reco(1), Timestamp(0));
        let fresh = s.insert("db1", reco(2), Timestamp(10_000));
        let stuck = s.stuck_since(Timestamp(5_000));
        assert!(stuck.contains(&old));
        assert!(!stuck.contains(&fresh));
        // Terminal records are never stuck.
        s.update(old, |r| {
            r.transition(RecoState::Expired, Timestamp(20_000), "")
                .unwrap()
        });
        assert!(
            s.stuck_since(Timestamp(50_000)).is_empty()
                || !s.stuck_since(Timestamp(50_000)).contains(&old)
        );
    }

    #[test]
    fn journal_lines_are_framed_and_checksummed() {
        let mut s = StateStore::new();
        s.insert("db1", reco(1), Timestamp(0));
        let line = &s.journal_lines()[0];
        let payload = parse_frame(line).expect("fresh line validates");
        assert!(payload.starts_with('{'), "payload is the JSON record");
        // Any single-byte corruption is caught by the checksum.
        let mut bad = line.clone();
        let idx = bad.len() - 1;
        bad.replace_range(idx.., "X");
        assert!(parse_frame(&bad).is_none());
        // A short (torn) line is caught by the length prefix.
        let mut torn = line.clone();
        torn.truncate(torn.len() / 2);
        assert!(parse_frame(&torn).is_none());
    }

    #[test]
    fn torn_tail_truncates_instead_of_panicking() {
        let mut s = StateStore::new();
        let a = s.insert("db1", reco(1), Timestamp(0));
        s.insert("db2", reco(2), Timestamp(1));
        s.corrupt_journal_tail();
        let report = s.crash_and_recover();
        assert!(report.torn_tail);
        assert_eq!(report.truncated, 1);
        assert_eq!(report.replayed, 1);
        assert_eq!(s.len(), 1, "only the intact prefix survives");
        assert!(s.get(a).is_some());
        assert_eq!(s.recovery_stats(), (1, 1, 0));
    }

    #[test]
    fn lost_tail_writes_are_tolerated() {
        let mut s = StateStore::new();
        let a = s.insert("db1", reco(1), Timestamp(0));
        s.update(a, |r| {
            r.transition(RecoState::Implementing, Timestamp(1), "")
                .unwrap();
            r.transition(RecoState::Validating, Timestamp(2), "")
                .unwrap();
        });
        // The last durable write never happened.
        s.tear_journal_tail(1);
        let report = s.crash_and_recover();
        // A clean-but-short journal is not a torn tail; the record simply
        // rewinds to its last durable state.
        assert!(!report.torn_tail);
        assert_eq!(report.truncated, 0);
        assert_eq!(s.get(a).unwrap().state, RecoState::Active);
    }

    #[test]
    fn recovery_reparks_mid_flight_states() {
        let mut s = StateStore::new();
        let a = s.insert("db1", reco(1), Timestamp(0));
        s.update(a, |r| {
            r.transition(RecoState::Implementing, Timestamp(1), "")
                .unwrap()
        });
        let report = s.crash_and_recover();
        assert_eq!(report.reparked, vec![a]);
        assert_eq!(s.get(a).unwrap().state, RecoState::Retry);
        // The repark is journaled: a second crash finds Retry, not
        // Implementing, and reparks nothing.
        let second = s.crash_and_recover();
        assert!(second.reparked.is_empty());
        assert_eq!(s.get(a).unwrap().state, RecoState::Retry);
    }

    #[test]
    fn id_base_survives_recovery_of_empty_journal() {
        let mut s = StateStore::with_id_base(3_000_000);
        let report = s.crash_and_recover();
        assert_eq!(report.next_id, 3_000_000);
        let id = s.insert("db1", reco(1), Timestamp(0));
        assert_eq!(id.0, 3_000_000, "id block must survive recovery");
    }

    /// A canonical fingerprint of everything a recovery must preserve.
    fn canon(s: &StateStore) -> String {
        let recos: Vec<String> = s.all().map(|r| serde_json::to_string(r).unwrap()).collect();
        format!(
            "{:?}|{}|{}|{:?}|{:?}",
            recos,
            s.id_base,
            s.next_id,
            s.schedules,
            s.recovery_stats()
        )
    }

    /// Drive `n` inserts + a state hop each, compacting under `policy`
    /// after every mutation (the way the plane's tick hook does).
    fn churn(s: &mut StateStore, n: u32, policy: Option<&CompactionPolicy>) {
        for i in 0..n {
            let id = s.insert("db1", reco(i), Timestamp(i as u64));
            s.update(id, |r| {
                r.transition(RecoState::Expired, Timestamp(i as u64 + 1), "")
                    .unwrap()
            });
            if let Some(p) = policy {
                s.maybe_compact(p);
            }
        }
    }

    /// A schedule that changes every tick — the long-lived-tenant
    /// workload: live state stays constant (one schedule entry) while
    /// the journal accumulates pure garbage.
    fn sched(t: u64) -> WakeSchedule {
        use crate::stages::NextDue;
        WakeSchedule {
            recommend: NextDue::At(Timestamp(t)),
            retry: NextDue::Idle,
            implement: NextDue::Idle,
            validate: NextDue::Idle,
            expire: NextDue::Idle,
            health: NextDue::NextTick,
        }
    }

    fn schedule_churn(s: &mut StateStore, n: u64, policy: Option<&CompactionPolicy>) {
        for t in 0..n {
            s.record_schedule("db1", &sched(t));
            if let Some(p) = policy {
                s.maybe_compact(p);
            }
        }
    }

    #[test]
    fn journal_bounded_under_compaction_unbounded_without() {
        // The failure mode the checkpoint work fixes: append-only
        // forever grows linearly with history, while compaction keeps
        // the journal at ~2 checkpoint intervals regardless of run
        // length.
        let policy = CompactionPolicy {
            enabled: true,
            min_frames: 8,
            garbage_ratio: 0.0,
            // ratio 0: the frame-count floor alone drives compaction.
        };
        let mut plain_short = StateStore::new();
        let mut plain_long = StateStore::new();
        let mut compacted = StateStore::new();
        schedule_churn(&mut plain_short, 20, None);
        schedule_churn(&mut plain_long, 200, None);
        schedule_churn(&mut compacted, 200, Some(&policy));
        assert_eq!(
            plain_long.journal_len(),
            10 * plain_short.journal_len(),
            "uncompacted journal grows linearly with history"
        );
        assert!(
            compacted.journal_len() <= 2 * policy.min_frames + 2,
            "compacted journal stays within ~2 checkpoint intervals, got {}",
            compacted.journal_len()
        );
        assert!(
            compacted.journal_bytes() < plain_long.journal_bytes() / 4,
            "compacted {} bytes vs uncompacted {} bytes",
            compacted.journal_bytes(),
            plain_long.journal_bytes()
        );
        // The monotonic write counter is compaction-independent.
        assert_eq!(compacted.journal_writes(), plain_long.journal_writes());
        let cs = compacted.checkpoint_stats();
        assert!(cs.checkpoints_written > 10);
        assert!(cs.frames_compacted > 150);
        assert!(cs.bytes_reclaimed > 0);
        assert_eq!(plain_long.checkpoint_stats(), CheckpointStats::default());
    }

    #[test]
    fn checkpoint_plus_tail_recovery_equals_full_replay() {
        let policy = CompactionPolicy {
            enabled: true,
            min_frames: 4,
            garbage_ratio: 0.5,
        };
        let mut with_ckpt = StateStore::with_id_base(100);
        let mut without = StateStore::with_id_base(100);
        churn(&mut with_ckpt, 40, Some(&policy));
        churn(&mut without, 40, None);
        let (a, ra) = StateStore::recovered_from(with_ckpt.journal_lines().to_vec());
        let (b, rb) = StateStore::recovered_from(without.journal_lines().to_vec());
        assert!(ra.checkpoint_used && !rb.checkpoint_used);
        assert!(
            ra.frame_reads < rb.frame_reads / 2,
            "checkpoint recovery must read far fewer frames ({} vs {})",
            ra.frame_reads,
            rb.frame_reads
        );
        assert_eq!(canon(&a), canon(&b), "recovered state must be identical");
        assert_eq!((ra.id_base, ra.next_id), (rb.id_base, rb.next_id));
    }

    #[test]
    fn compaction_keeps_the_previous_checkpoint() {
        let policy = CompactionPolicy {
            enabled: true,
            min_frames: 6,
            garbage_ratio: 0.0,
        };
        let mut s = StateStore::new();
        churn(&mut s, 30, Some(&policy));
        let ckpts: Vec<usize> = s
            .journal_lines()
            .iter()
            .enumerate()
            .filter(|(_, l)| super::looks_like_checkpoint(l))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(
            ckpts.len(),
            2,
            "the journal holds exactly the previous + latest checkpoint"
        );
        assert_eq!(
            ckpts[0], 0,
            "everything before the previous checkpoint was truncated"
        );
    }

    #[test]
    fn corrupt_latest_checkpoint_falls_back_losslessly() {
        let policy = CompactionPolicy {
            enabled: true,
            min_frames: 4,
            garbage_ratio: 0.0,
        };
        let mut s = StateStore::with_id_base(7);
        churn(&mut s, 20, Some(&policy));
        // A couple of tail writes after the last checkpoint.
        let extra = s.insert("db2", reco(99), Timestamp(999));
        let expected = canon(&s);
        s.corrupt_last_checkpoint();
        let report = s.crash_and_recover();
        assert!(report.checkpoint_fallback, "fallback must be reported");
        assert!(report.checkpoint_used, "the previous checkpoint takes over");
        assert!(!report.torn_tail, "the tail after the damage is intact");
        assert_eq!(report.corrupt_mid, 1, "the damaged checkpoint is skipped");
        // Lossless: the keep-previous invariant means every logical
        // frame since the previous checkpoint is still in the journal.
        assert_eq!(canon_recovered(&s), expected);
        assert!(s.get(extra).is_some());
        assert_eq!(s.checkpoint_stats().fallback_recoveries, 1);
        assert_eq!(s.checkpoint_stats().corrupt_frames, 1);
        // A second crash over the rebuilt journal is clean.
        let again = s.crash_and_recover();
        assert!(!again.checkpoint_fallback);
        assert_eq!(again.corrupt_mid, 0);
    }

    /// `canon` modulo the cumulative recovery counters, which a
    /// crash_and_recover legitimately bumps on the live store.
    fn canon_recovered(s: &StateStore) -> String {
        let recos: Vec<String> = s.all().map(|r| serde_json::to_string(r).unwrap()).collect();
        format!(
            "{:?}|{}|{}|{:?}|{:?}",
            recos,
            s.id_base,
            s.next_id,
            s.schedules,
            (0u64, 0u64, 0u64)
        )
    }

    #[test]
    fn no_checkpoint_and_corrupt_first_checkpoint_reaches_full_replay() {
        // Bottom rung of the ladder: the only checkpoint in the journal
        // is damaged, so recovery replays everything from the start.
        let policy = CompactionPolicy {
            enabled: true,
            min_frames: 50,
            garbage_ratio: 0.0,
        };
        let mut s = StateStore::new();
        churn(&mut s, 30, Some(&policy)); // 60 frames → exactly 1 checkpoint
        assert_eq!(s.checkpoint_stats().checkpoints_written, 1);
        let expected = canon_recovered(&s);
        s.corrupt_last_checkpoint();
        let report = s.crash_and_recover();
        assert!(report.checkpoint_fallback);
        assert!(!report.checkpoint_used, "full replay, no checkpoint left");
        assert_eq!(canon_recovered(&s), expected, "zero loss");
    }

    #[test]
    fn mid_journal_corruption_is_skipped_not_suffix_truncated() {
        let mut s = seededish();
        let before = s.journal_len();
        // Corrupt an *interior* frame: c's insert record.
        s.corrupt_journal_frame(2);
        let report = s.crash_and_recover();
        assert!(!report.torn_tail, "not a torn tail — a frame mid-journal");
        assert_eq!(report.corrupt_mid, 1);
        assert_eq!(report.truncated, 0);
        assert_eq!(report.replayed, before - 1);
        // The record whose only frame rotted is gone; everything before
        // AND after it survives (the old code lost the whole suffix).
        assert_eq!(s.len(), 2);
        assert!(s.get(RecoId(0)).is_some());
        assert!(s.get(RecoId(2)).is_none());
        // b was caught mid-`Implementing`, so recovery re-parks it.
        assert_eq!(s.get(RecoId(1)).unwrap().state, RecoState::Retry);
        assert_eq!(report.reparked, vec![RecoId(1)]);
        assert_eq!(s.checkpoint_stats().corrupt_frames, 1);
    }

    /// insert a, insert b, insert c, update b — four frames.
    fn seededish() -> StateStore {
        let mut s = StateStore::new();
        s.insert("db1", reco(1), Timestamp(0));
        let b = s.insert("db1", reco(2), Timestamp(1));
        s.insert("db1", reco(3), Timestamp(2));
        s.update(b, |r| {
            r.transition(RecoState::Implementing, Timestamp(3), "go")
                .unwrap()
        });
        s
    }

    #[test]
    fn disabled_policy_never_compacts() {
        let policy = CompactionPolicy {
            enabled: false,
            min_frames: 1,
            garbage_ratio: 0.0,
        };
        let mut s = StateStore::new();
        churn(&mut s, 10, Some(&policy));
        assert_eq!(s.checkpoint_stats().checkpoints_written, 0);
        assert_eq!(s.journal_len(), 20);
    }

    #[test]
    fn count_by_state_summary() {
        let mut s = StateStore::new();
        s.insert("db1", reco(1), Timestamp(0));
        let b = s.insert("db1", reco(2), Timestamp(0));
        s.update(b, |r| {
            r.transition(RecoState::Implementing, Timestamp(1), "")
                .unwrap()
        });
        let counts = s.count_by_state();
        assert_eq!(counts.get("Active"), Some(&1));
        assert_eq!(counts.get("Implementing"), Some(&1));
    }

    // -----------------------------------------------------------------
    // Flight frames (§7 policy A/B journaling).
    // -----------------------------------------------------------------

    fn flight_rec(id: &str, verdicts: usize) -> crate::flight::FlightRecord {
        use crate::flight::{FlightState, TenantVerdict, TenantVerdictRecord};
        crate::flight::FlightRecord {
            id: id.to_string(),
            seed: 7,
            state: FlightState::Running,
            cohort: (0..verdicts + 2).collect(),
            verdicts: (0..verdicts)
                .map(|i| {
                    (
                        i,
                        TenantVerdictRecord {
                            verdict: TenantVerdict::Wash,
                            control_cost: 10.0 + i as f64,
                            candidate_cost: 9.0,
                            p_candidate_greater: Some(0.5),
                            divergence: 0.01,
                            replayed: 100,
                            replay_cpu_us: 5_000,
                        },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn flight_frames_journal_only_on_change() {
        let mut s = StateStore::new();
        let rec = flight_rec("fl", 1);
        s.record_flight(&rec);
        assert_eq!(s.journal_len(), 1);
        // Unchanged record: dedup, no frame.
        s.record_flight(&rec);
        assert_eq!(s.journal_len(), 1);
        // A new verdict is a change: one more frame.
        let grown = flight_rec("fl", 2);
        s.record_flight(&grown);
        assert_eq!(s.journal_len(), 2);
        assert_eq!(s.flight("fl"), Some(&grown));
    }

    #[test]
    fn flight_frames_survive_crash_recovery() {
        let mut s = StateStore::new();
        s.insert("db1", reco(1), Timestamp(0));
        s.record_flight(&flight_rec("fl-a", 2));
        let mut terminal = flight_rec("fl-b", 3);
        terminal.state = crate::flight::FlightState::Shipped;
        s.record_flight(&terminal);
        let before = s.flights().clone();
        s.crash_and_recover();
        assert_eq!(s.flights(), &before);
        assert_eq!(
            s.flight("fl-b").unwrap().state,
            crate::flight::FlightState::Shipped
        );
    }

    #[test]
    fn checkpoint_compaction_carries_flights() {
        let policy = CompactionPolicy {
            enabled: true,
            min_frames: 2,
            garbage_ratio: 0.0,
        };
        let mut s = StateStore::new();
        // Successively larger snapshots of the same flight: all but the
        // last are garbage, so compaction has something to reclaim.
        for k in 1..=4 {
            s.record_flight(&flight_rec("fl", k));
        }
        let before = s.flights().clone();
        assert!(s.maybe_compact(&policy), "garbage-heavy journal compacts");
        assert_eq!(s.flights(), &before, "checkpoint carries flight state");
        s.crash_and_recover();
        assert_eq!(
            s.flights(),
            &before,
            "recovery from checkpoint + tail restores flights"
        );
    }
}
