//! Journaled recommendation-state store.
//!
//! The production control plane persists its state machine in a
//! highly-available database (§4). Here durability is modeled with an
//! append-only journal of checksummed, length-prefixed JSON records:
//! every mutation is journaled, and recovery replays the journal into a
//! fresh in-memory map. Crash consistency is the point — a torn or
//! corrupt tail is truncated (never a panic), recovery reports what was
//! dropped, and any recommendation caught mid-`Implementing` or
//! mid-`Reverting` is re-parked in the paper's Retry state rather than
//! silently resumed, because the crash may or may not have completed
//! the underlying engine action.

use crate::stages::WakeSchedule;
use crate::state::{RecoId, TrackedReco};
use autoindex::Recommendation;
use sqlmini::clock::Timestamp;
use std::collections::BTreeMap;

/// One journal record.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
enum JournalEntry {
    Upsert(Box<TrackedReco>),
    /// Store metadata: the id-allocation base. Journaled once at store
    /// creation so a recovered shard keeps its fleet-wide disjoint id
    /// block even when the journal holds no (or few) recommendations.
    Meta {
        id_base: u64,
    },
    /// The wake schedule computed at the end of a tick. Journaled only
    /// when it changes, so a recovered store hands the fleet driver the
    /// exact due-time index the crashed process was operating under.
    Schedule {
        database: String,
        schedule: WakeSchedule,
    },
}

/// FNV-1a over the payload bytes — the journal frame checksum.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Frame a journal payload: `<len-hex>|<fnv1a-hex>|<payload>`. The
/// length prefix catches torn (short) writes, the checksum catches
/// bit-rot and mid-record corruption.
fn frame(payload: &str) -> String {
    format!(
        "{:08x}|{:08x}|{}",
        payload.len(),
        fnv1a32(payload.as_bytes()),
        payload
    )
}

/// Validate a frame and return its payload, or `None` if the record is
/// torn (short/garbled prefix) or corrupt (checksum mismatch).
fn parse_frame(line: &str) -> Option<&str> {
    let (len_hex, rest) = line.split_once('|')?;
    let (crc_hex, payload) = rest.split_once('|')?;
    let len = usize::from_str_radix(len_hex, 16).ok()?;
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    if payload.len() != len || fnv1a32(payload.as_bytes()) != crc {
        return None;
    }
    Some(payload)
}

/// What one [`StateStore::crash_and_recover`] pass did.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RecoveryReport {
    /// Journal entries successfully replayed.
    pub replayed: usize,
    /// Entries dropped from the tail (first torn/corrupt record onward).
    pub truncated: usize,
    /// True when truncation happened because a record failed frame or
    /// checksum validation (as opposed to a clean, complete journal).
    pub torn_tail: bool,
    /// Recommendations found mid-`Implementing`/`Reverting` and
    /// re-parked into Retry.
    pub reparked: Vec<RecoId>,
    /// The recovered id-allocation base.
    pub id_base: u64,
    /// The next id the recovered store will allocate.
    pub next_id: u64,
}

/// The state store: in-memory view + append-only journal.
#[derive(Debug, Default)]
pub struct StateStore {
    recos: BTreeMap<RecoId, TrackedReco>,
    next_id: u64,
    id_base: u64,
    journal: Vec<String>,
    /// Last recorded wake schedule per database (journaled on change).
    schedules: BTreeMap<String, WakeSchedule>,
    last_recovery: Option<RecoveryReport>,
    /// Cumulative chaos counters (survive across recoveries).
    recoveries: u64,
    truncated_total: u64,
    reparked_total: u64,
}

impl StateStore {
    pub fn new() -> StateStore {
        StateStore::default()
    }

    /// A store whose [`RecoId`]s start at `base`. The fleet driver gives
    /// each tenant's shard-owned store a disjoint id block, so ids are
    /// unique fleet-wide and independent of thread interleaving. The
    /// base is journaled so recovery preserves the block (a recovered
    /// shard must never re-allocate from 0 and collide fleet-wide).
    pub fn with_id_base(base: u64) -> StateStore {
        let mut s = StateStore {
            next_id: base,
            id_base: base,
            ..StateStore::default()
        };
        if base > 0 {
            let line = serde_json::to_string(&JournalEntry::Meta { id_base: base })
                .expect("meta serializes");
            s.journal.push(frame(&line));
        }
        s
    }

    fn journal_upsert(&mut self, r: &TrackedReco) {
        let line = serde_json::to_string(&JournalEntry::Upsert(Box::new(r.clone())))
            .expect("reco serializes");
        self.journal.push(frame(&line));
    }

    /// Track a new recommendation (state: Active).
    pub fn insert(
        &mut self,
        database: impl Into<String>,
        recommendation: Recommendation,
        now: Timestamp,
    ) -> RecoId {
        let id = RecoId(self.next_id);
        self.next_id += 1;
        let tracked = TrackedReco::new(id, database, recommendation, now);
        self.journal_upsert(&tracked);
        self.recos.insert(id, tracked);
        id
    }

    pub fn get(&self, id: RecoId) -> Option<&TrackedReco> {
        self.recos.get(&id)
    }

    /// Mutate a recommendation through `f`; the updated record is
    /// journaled. Returns `f`'s result.
    pub fn update<T>(&mut self, id: RecoId, f: impl FnOnce(&mut TrackedReco) -> T) -> Option<T> {
        // Split borrow: mutate, then journal a clone.
        let out;
        let snapshot;
        match self.recos.get_mut(&id) {
            Some(r) => {
                out = f(r);
                snapshot = r.clone();
            }
            None => return None,
        }
        self.journal_upsert(&snapshot);
        Some(out)
    }

    /// Record a database's end-of-tick wake schedule. Journaled only
    /// when it differs from the last recorded one: a no-op tick
    /// recomputes an identical schedule and must not grow the journal
    /// (the sparse/dense equivalence proof leans on this).
    pub fn record_schedule(&mut self, database: &str, schedule: &WakeSchedule) {
        if self.schedules.get(database) == Some(schedule) {
            return;
        }
        let line = serde_json::to_string(&JournalEntry::Schedule {
            database: database.to_string(),
            schedule: *schedule,
        })
        .expect("schedule serializes");
        self.journal.push(frame(&line));
        self.schedules.insert(database.to_string(), *schedule);
    }

    /// The last recorded wake schedule for a database (journal-backed:
    /// survives [`StateStore::crash_and_recover`]).
    pub fn schedule(&self, database: &str) -> Option<&WakeSchedule> {
        self.schedules.get(database)
    }

    /// All recommendations for one database.
    pub fn for_database<'a>(
        &'a self,
        database: &'a str,
    ) -> impl Iterator<Item = &'a TrackedReco> + 'a {
        self.recos.values().filter(move |r| r.database == database)
    }

    /// Non-terminal recommendations for one database.
    pub fn open_for_database<'a>(
        &'a self,
        database: &'a str,
    ) -> impl Iterator<Item = &'a TrackedReco> + 'a {
        self.for_database(database)
            .filter(|r| !r.state.is_terminal())
    }

    pub fn all(&self) -> impl Iterator<Item = &TrackedReco> {
        self.recos.values()
    }

    /// Count by state (dashboard primitive).
    pub fn count_by_state(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for r in self.recos.values() {
            *m.entry(format!("{:?}", r.state)).or_default() += 1;
        }
        m
    }

    pub fn len(&self) -> usize {
        self.recos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.recos.is_empty()
    }

    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// The raw framed journal lines (chaos-test surface).
    pub fn journal_lines(&self) -> &[String] {
        &self.journal
    }

    /// Drop the last `n` journal records — models writes the crashed
    /// process acknowledged in memory but never made durable.
    pub fn tear_journal_tail(&mut self, n: usize) {
        let keep = self.journal.len().saturating_sub(n);
        self.journal.truncate(keep);
    }

    /// Mangle the final journal record — models a write torn mid-record
    /// by the crash. The frame's length prefix and checksum make the
    /// damage detectable on recovery.
    pub fn corrupt_journal_tail(&mut self) {
        if let Some(last) = self.journal.last_mut() {
            let mut k = last.len() / 2;
            while k > 0 && !last.is_char_boundary(k) {
                k -= 1;
            }
            last.truncate(k);
        }
    }

    /// What the most recent recovery replayed, truncated, and re-parked.
    pub fn recover_report(&self) -> Option<&RecoveryReport> {
        self.last_recovery.as_ref()
    }

    /// Cumulative chaos counters: (recoveries, truncated entries,
    /// re-parked recommendations) since the store was created.
    pub fn recovery_stats(&self) -> (u64, u64, u64) {
        (self.recoveries, self.truncated_total, self.reparked_total)
    }

    /// Build a store by replaying framed journal lines. Replay stops at
    /// the first torn or corrupt record — everything from there on is
    /// truncated (the durable prefix wins, the torn tail is lost) — and
    /// never panics. Mid-flight recommendations (`Implementing`,
    /// `Reverting`) are re-parked into Retry, with the re-park journaled
    /// so a second crash recovers to the same place.
    pub fn recovered_from(journal: Vec<String>) -> (StateStore, RecoveryReport) {
        let mut s = StateStore::default();
        let mut report = RecoveryReport::default();
        let mut good = 0usize;
        for line in &journal {
            let entry = parse_frame(line)
                .and_then(|payload| serde_json::from_str::<JournalEntry>(payload).ok());
            let Some(entry) = entry else {
                report.torn_tail = true;
                break;
            };
            match entry {
                JournalEntry::Upsert(r) => {
                    s.next_id = s.next_id.max(r.id.0 + 1);
                    s.recos.insert(r.id, *r);
                }
                JournalEntry::Meta { id_base } => {
                    s.id_base = s.id_base.max(id_base);
                }
                JournalEntry::Schedule { database, schedule } => {
                    s.schedules.insert(database, schedule);
                }
            }
            good += 1;
        }
        report.replayed = good;
        report.truncated = journal.len() - good;
        s.journal = journal;
        s.journal.truncate(good);
        s.next_id = s.next_id.max(s.id_base);

        // Re-park anything the crash caught mid-operation: the engine
        // action may or may not have completed, so the only safe state
        // is Retry — the retry path re-drives or terminally parks it.
        let mid: Vec<_> = s
            .recos
            .values()
            .filter_map(|r| {
                r.state.retry_phase().map(|phase| {
                    let at = r.history.last().map(|t| t.at).unwrap_or(r.created_at);
                    (r.id, phase, at)
                })
            })
            .collect();
        for (id, phase, at) in mid {
            // The re-park gives the reco a retry deadline the journaled
            // schedule never saw — that schedule is stale now, and a
            // sparse driver trusting it could sleep through the retry.
            // Dropping it forces a conservative wake-next-tick.
            if let Some(db) = s.recos.get(&id).map(|r| r.database.clone()) {
                s.schedules.remove(&db);
            }
            s.update(id, |r| {
                let _ = r.enter_retry(phase, at, "re-parked by crash recovery");
            });
            report.reparked.push(id);
        }
        report.id_base = s.id_base;
        report.next_id = s.next_id;
        (s, report)
    }

    /// Simulate a control-plane crash: drop all in-memory state, then
    /// recover from the journal. Tolerates a torn/corrupt tail by
    /// truncating it (see [`StateStore::recovered_from`]); the outcome
    /// is described by the returned [`RecoveryReport`] and retained for
    /// [`StateStore::recover_report`].
    pub fn crash_and_recover(&mut self) -> RecoveryReport {
        let journal = std::mem::take(&mut self.journal);
        let (recovered, report) = StateStore::recovered_from(journal);
        self.recos = recovered.recos;
        self.next_id = recovered.next_id;
        self.id_base = recovered.id_base;
        self.journal = recovered.journal;
        self.schedules = recovered.schedules;
        self.recoveries += 1;
        self.truncated_total += report.truncated as u64;
        self.reparked_total += report.reparked.len() as u64;
        self.last_recovery = Some(report.clone());
        report
    }

    /// Recommendations stuck in a non-terminal state since before
    /// `horizon` (health detection input).
    pub fn stuck_since(&self, horizon: Timestamp) -> Vec<RecoId> {
        self.recos
            .values()
            .filter(|r| {
                !r.state.is_terminal()
                    && r.history.last().map(|t| t.at).unwrap_or(r.created_at) < horizon
            })
            .map(|r| r.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::RecoState;
    use autoindex::{RecoAction, RecoSource};
    use sqlmini::schema::{ColumnId, IndexDef, TableId};

    fn reco(n: u32) -> Recommendation {
        Recommendation {
            action: RecoAction::CreateIndex {
                def: IndexDef::new(format!("ix{n}"), TableId(0), vec![ColumnId(1)], vec![]),
            },
            source: RecoSource::MissingIndex,
            estimated_benefit: n as f64,
            estimated_improvement: 0.5,
            estimated_size_bytes: 100,
            impacted_queries: vec![],
            generated_at: Timestamp(0),
        }
    }

    #[test]
    fn insert_get_update() {
        let mut s = StateStore::new();
        let id = s.insert("db1", reco(1), Timestamp(0));
        assert_eq!(s.get(id).unwrap().state, RecoState::Active);
        s.update(id, |r| {
            r.transition(RecoState::Implementing, Timestamp(5), "go")
                .unwrap()
        })
        .unwrap();
        assert_eq!(s.get(id).unwrap().state, RecoState::Implementing);
        assert_eq!(s.journal_len(), 2);
    }

    #[test]
    fn recovery_restores_state() {
        let mut s = StateStore::new();
        let a = s.insert("db1", reco(1), Timestamp(0));
        let b = s.insert("db2", reco(2), Timestamp(1));
        s.update(a, |r| {
            r.transition(RecoState::Implementing, Timestamp(2), "")
                .unwrap();
            r.transition(RecoState::Validating, Timestamp(3), "")
                .unwrap();
        });
        let before: Vec<(RecoId, RecoState)> = s.all().map(|r| (r.id, r.state)).collect();
        s.crash_and_recover();
        let after: Vec<(RecoId, RecoState)> = s.all().map(|r| (r.id, r.state)).collect();
        assert_eq!(before, after);
        assert_eq!(s.get(a).unwrap().history.len(), 2, "history survives");
        assert_eq!(s.get(b).unwrap().state, RecoState::Active);
        // New ids continue after the recovered maximum.
        let c = s.insert("db3", reco(3), Timestamp(9));
        assert!(c.0 > b.0);
    }

    #[test]
    fn recovery_of_empty_journal_is_clean() {
        // A store that never journaled anything (fresh process, crash
        // before first write) must recover to an empty store without
        // reporting a torn tail.
        let (s, report) = StateStore::recovered_from(Vec::new());
        assert!(s.is_empty());
        assert_eq!(s.journal_len(), 0);
        assert_eq!(
            report,
            RecoveryReport {
                replayed: 0,
                truncated: 0,
                torn_tail: false,
                reparked: vec![],
                id_base: 0,
                next_id: 0,
            }
        );
        // And an in-place crash of a never-written store is a no-op.
        let mut fresh = StateStore::new();
        let r = fresh.crash_and_recover();
        assert!(!r.torn_tail);
        assert!(fresh.is_empty());
    }

    #[test]
    fn recovery_when_only_frame_is_truncated() {
        // The very first journal record is torn mid-write: recovery must
        // drop it (empty durable prefix), flag the torn tail, and leave
        // a usable empty store — not panic or resurrect half a record.
        let mut s = StateStore::new();
        s.insert("db1", reco(1), Timestamp(0));
        assert_eq!(s.journal_len(), 1);
        s.corrupt_journal_tail();
        let journal = s.journal_lines().to_vec();
        let (recovered, report) = StateStore::recovered_from(journal);
        assert!(report.torn_tail);
        assert_eq!(report.replayed, 0);
        assert_eq!(report.truncated, 1);
        assert!(recovered.is_empty(), "no durable prefix to restore");
        assert_eq!(recovered.journal_len(), 0, "torn record not re-journaled");
    }

    #[test]
    fn per_database_filtering() {
        let mut s = StateStore::new();
        s.insert("db1", reco(1), Timestamp(0));
        s.insert("db1", reco(2), Timestamp(0));
        let done = s.insert("db1", reco(3), Timestamp(0));
        s.insert("db2", reco(4), Timestamp(0));
        s.update(done, |r| {
            r.transition(RecoState::Expired, Timestamp(1), "").unwrap()
        });
        assert_eq!(s.for_database("db1").count(), 3);
        assert_eq!(s.open_for_database("db1").count(), 2);
        assert_eq!(s.for_database("db2").count(), 1);
    }

    #[test]
    fn stuck_detection() {
        let mut s = StateStore::new();
        let old = s.insert("db1", reco(1), Timestamp(0));
        let fresh = s.insert("db1", reco(2), Timestamp(10_000));
        let stuck = s.stuck_since(Timestamp(5_000));
        assert!(stuck.contains(&old));
        assert!(!stuck.contains(&fresh));
        // Terminal records are never stuck.
        s.update(old, |r| {
            r.transition(RecoState::Expired, Timestamp(20_000), "")
                .unwrap()
        });
        assert!(
            s.stuck_since(Timestamp(50_000)).is_empty()
                || !s.stuck_since(Timestamp(50_000)).contains(&old)
        );
    }

    #[test]
    fn journal_lines_are_framed_and_checksummed() {
        let mut s = StateStore::new();
        s.insert("db1", reco(1), Timestamp(0));
        let line = &s.journal_lines()[0];
        let payload = parse_frame(line).expect("fresh line validates");
        assert!(payload.starts_with('{'), "payload is the JSON record");
        // Any single-byte corruption is caught by the checksum.
        let mut bad = line.clone();
        let idx = bad.len() - 1;
        bad.replace_range(idx.., "X");
        assert!(parse_frame(&bad).is_none());
        // A short (torn) line is caught by the length prefix.
        let mut torn = line.clone();
        torn.truncate(torn.len() / 2);
        assert!(parse_frame(&torn).is_none());
    }

    #[test]
    fn torn_tail_truncates_instead_of_panicking() {
        let mut s = StateStore::new();
        let a = s.insert("db1", reco(1), Timestamp(0));
        s.insert("db2", reco(2), Timestamp(1));
        s.corrupt_journal_tail();
        let report = s.crash_and_recover();
        assert!(report.torn_tail);
        assert_eq!(report.truncated, 1);
        assert_eq!(report.replayed, 1);
        assert_eq!(s.len(), 1, "only the intact prefix survives");
        assert!(s.get(a).is_some());
        assert_eq!(s.recovery_stats(), (1, 1, 0));
    }

    #[test]
    fn lost_tail_writes_are_tolerated() {
        let mut s = StateStore::new();
        let a = s.insert("db1", reco(1), Timestamp(0));
        s.update(a, |r| {
            r.transition(RecoState::Implementing, Timestamp(1), "")
                .unwrap();
            r.transition(RecoState::Validating, Timestamp(2), "")
                .unwrap();
        });
        // The last durable write never happened.
        s.tear_journal_tail(1);
        let report = s.crash_and_recover();
        // A clean-but-short journal is not a torn tail; the record simply
        // rewinds to its last durable state.
        assert!(!report.torn_tail);
        assert_eq!(report.truncated, 0);
        assert_eq!(s.get(a).unwrap().state, RecoState::Active);
    }

    #[test]
    fn recovery_reparks_mid_flight_states() {
        let mut s = StateStore::new();
        let a = s.insert("db1", reco(1), Timestamp(0));
        s.update(a, |r| {
            r.transition(RecoState::Implementing, Timestamp(1), "")
                .unwrap()
        });
        let report = s.crash_and_recover();
        assert_eq!(report.reparked, vec![a]);
        assert_eq!(s.get(a).unwrap().state, RecoState::Retry);
        // The repark is journaled: a second crash finds Retry, not
        // Implementing, and reparks nothing.
        let second = s.crash_and_recover();
        assert!(second.reparked.is_empty());
        assert_eq!(s.get(a).unwrap().state, RecoState::Retry);
    }

    #[test]
    fn id_base_survives_recovery_of_empty_journal() {
        let mut s = StateStore::with_id_base(3_000_000);
        let report = s.crash_and_recover();
        assert_eq!(report.next_id, 3_000_000);
        let id = s.insert("db1", reco(1), Timestamp(0));
        assert_eq!(id.0, 3_000_000, "id block must survive recovery");
    }

    #[test]
    fn count_by_state_summary() {
        let mut s = StateStore::new();
        s.insert("db1", reco(1), Timestamp(0));
        let b = s.insert("db1", reco(2), Timestamp(0));
        s.update(b, |r| {
            r.transition(RecoState::Implementing, Timestamp(1), "")
                .unwrap()
        });
        let counts = s.count_by_state();
        assert_eq!(counts.get("Active"), Some(&1));
        assert_eq!(counts.get("Implementing"), Some(&1));
    }
}
