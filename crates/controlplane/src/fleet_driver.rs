//! Parallel fleet control loop with deterministic replay.
//!
//! The paper's service runs one control plane per region over hundreds of
//! thousands of databases; control-plane passes for distinct databases
//! are embarrassingly parallel because every piece of tuning state is
//! per-database. This module exploits exactly that: the fleet is split
//! into *shard-owned* tenant states (each tenant gets its own journaled
//! [`StateStore`] with a disjoint [`RecoId`](crate::state::RecoId)
//! block, its own [`Telemetry`] sink, and its own per-tenant-seeded
//! [`FaultInjector`]), and a work-stealing pool of OS threads drives
//! `workload → ControlPlane::tick` loops for many tenants concurrently.
//! No global mutex is touched on the hot path; global aggregates are
//! produced by merging the per-tenant sinks **in fleet order** at
//! quiesce.
//!
//! Determinism: every random decision is drawn from state seeded by the
//! tenant's *fleet index* — never by the executing thread — so a run
//! with `threads = N` produces byte-identical end-of-run fleet state
//! ([`FleetReport::canonical_string`]) to a `threads = 1` serial run, no
//! matter how tasks were stolen. That property is what makes fleet-scale
//! failures replayable: re-run serially with the same seeds and step
//! through the one tenant that misbehaved.

use crate::faults::{FaultInjector, FaultKind, FaultPoint};
use crate::metrics::MetricsRegistry;
use crate::plane::{ControlPlane, ManagedDb, PlanePolicy};
use crate::region::DashboardSnapshot;
use crate::state::{effective, DbSettings, ServerSettings};
use crate::store::StateStore;
use crate::telemetry::{EventKind, Telemetry};
use crate::trace::Tracer;
use crossbeam::deque::{Injector, Stealer, Worker};
use sqlmini::clock::{Duration, Timestamp};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use workload::fleet::Tenant;
use workload::runner::RunSummary;

/// A deterministic fault script targeting one tenant of the fleet: the
/// next `count` checks at `point` on that tenant's injector fail with
/// `kind`. Scripts stack (they append to the tenant's queue), composing
/// with any stochastic `fault_seed` configuration.
#[derive(Debug, Clone)]
pub struct TenantScript {
    /// Fleet index of the tenant the script applies to.
    pub tenant: usize,
    pub point: FaultPoint,
    pub count: u32,
    pub kind: FaultKind,
}

/// Knobs for a fleet run. Everything that influences tenant behavior
/// lives here, so a config + fleet seed fully determines the outcome.
#[derive(Debug, Clone)]
pub struct FleetDriverConfig {
    pub policy: PlanePolicy,
    /// Simulated time advanced per tick (workload runs for the whole
    /// interval, then the control plane takes one pass).
    pub tick_interval: Duration,
    /// Auto-indexing settings applied to every tenant.
    pub settings: DbSettings,
    /// When set, each tenant gets a stochastic fault injector seeded
    /// from this value and the tenant's fleet index.
    pub fault_seed: Option<u64>,
    pub fault_transient_prob: f64,
    pub fault_fatal_prob: f64,
    /// Each tenant's store allocates RecoIds from
    /// `index * id_stride`, keeping ids disjoint fleet-wide.
    pub id_stride: u64,
    /// Circuit breaker: this many *consecutive* ticks with at least one
    /// injected fault quarantines the tenant (`0` disables). Counted per
    /// tenant from per-tenant state only, so it replays deterministically.
    pub quarantine_threshold: u32,
    /// Ticks a quarantined tenant's control plane sits out. The tenant's
    /// workload keeps running — the customer's database stays up; only
    /// the tuner backs away.
    pub quarantine_cooldown: u32,
    /// Chaos knob: crash + recover each tenant's store at the first tick
    /// boundary after every `k`-th journal write. Tick boundaries are
    /// the process-restart points (no recommendation is ever mid-flight
    /// there), so a sweep with an intact journal must replay
    /// byte-identically to an uncrashed run.
    pub crash_every_writes: Option<u64>,
    /// Deterministic per-tenant fault scripts, applied at worker setup.
    pub scripts: Vec<TenantScript>,
    /// When set, this fraction of tenants (chosen by a pure hash of the
    /// fleet index — thread-independent) runs with auto-implementation
    /// fully ON and the rest in recommend-only mode, overriding
    /// `settings`. Models §8.1's "about a quarter of eligible databases
    /// have auto-implementation enabled".
    pub auto_fraction: Option<f64>,
    /// Enable per-tenant tick tracing (span trees on each tenant's
    /// control plane). Off by default: traces are a debugging surface,
    /// not part of the canonical fleet state.
    pub trace: bool,
}

impl Default for FleetDriverConfig {
    fn default() -> FleetDriverConfig {
        FleetDriverConfig {
            policy: PlanePolicy::default(),
            tick_interval: Duration::from_hours(1),
            settings: DbSettings::all_on(),
            fault_seed: None,
            fault_transient_prob: 0.0,
            fault_fatal_prob: 0.0,
            id_stride: 1_000_000,
            quarantine_threshold: 0,
            quarantine_cooldown: 0,
            crash_every_writes: None,
            scripts: Vec::new(),
            auto_fraction: None,
            trace: false,
        }
    }
}

/// Deterministic uniform draw in [0, 1) from a fleet index — splitmix64
/// finalizer, so auto-implement assignment replays regardless of
/// threading and of any fault seeding.
fn index_uniform01(index: usize) -> f64 {
    let mut z = (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA070_F8AC;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// How a tenant's worker finished.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TenantStatus {
    /// All ticks ran (possibly with quarantine windows).
    Completed,
    /// The worker panicked at `tick`; the supervisor caught the unwind,
    /// froze the tenant's state as-is, and kept the rest of the fleet
    /// running.
    Poisoned { tick: u32, note: String },
}

impl TenantStatus {
    pub fn is_poisoned(&self) -> bool {
        matches!(self, TenantStatus::Poisoned { .. })
    }
}

/// End-of-run state of one tenant, in a canonically serializable form.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantOutcome {
    pub name: String,
    /// Recommendations ever tracked for this tenant.
    pub recommendations: usize,
    /// Recommendation count per state name.
    pub by_state: BTreeMap<String, usize>,
    /// Validation verdict counters (the `Validation*` event kinds).
    pub verdicts: BTreeMap<String, u64>,
    /// Fault/failure counters (transient + fatal + lock timeouts).
    pub faults: BTreeMap<String, u64>,
    pub incidents: usize,
    /// Journal length — proxy for state-store write traffic.
    pub journal_len: usize,
    /// Final index names on the tenant database, sorted.
    pub indexes: Vec<String>,
    pub statements: u64,
    pub errors: u64,
    pub rows_returned: u64,
    /// How the worker finished (panics surface here, not as aborts).
    pub status: TenantStatus,
    /// Circuit-breaker trips for this tenant.
    pub quarantines: u64,
    /// Ticks spent in quarantine cool-down (control plane idle).
    pub quarantined_ticks: u64,
}

impl TenantOutcome {
    fn collect(
        name: String,
        plane: &ControlPlane,
        mdb: &ManagedDb,
        run: &RunSummary,
        supervision: SupervisionSummary,
    ) -> TenantOutcome {
        const VERDICT_KINDS: [EventKind; 4] = [
            EventKind::ValidationImproved,
            EventKind::ValidationInconclusive,
            EventKind::ValidationRegressed,
            EventKind::ValidationNoData,
        ];
        const FAULT_KINDS: [EventKind; 7] = [
            EventKind::ImplementFailedTransient,
            EventKind::ImplementFailedFatal,
            EventKind::RevertFailedTransient,
            EventKind::DropLockTimedOut,
            EventKind::DtaSessionAborted,
            EventKind::TenantQuarantined,
            EventKind::TenantPoisoned,
        ];
        let counter_map = |kinds: &[EventKind]| -> BTreeMap<String, u64> {
            kinds
                .iter()
                .map(|k| (format!("{k:?}"), plane.telemetry.count(*k)))
                .filter(|(_, v)| *v > 0)
                .collect()
        };
        let mut indexes: Vec<String> = mdb
            .db
            .catalog()
            .indexes()
            .map(|(_, def)| def.name.clone())
            .collect();
        indexes.sort_unstable();
        TenantOutcome {
            name,
            recommendations: plane.store.len(),
            by_state: plane.store.count_by_state(),
            verdicts: counter_map(&VERDICT_KINDS),
            faults: counter_map(&FAULT_KINDS),
            incidents: plane.telemetry.incidents().len(),
            journal_len: plane.store.journal_len(),
            indexes,
            statements: run.statements,
            errors: run.errors,
            rows_returned: run.rows_returned,
            status: supervision.status,
            quarantines: supervision.quarantines,
            quarantined_ticks: supervision.quarantined_ticks,
        }
    }
}

/// What the per-tenant supervisor observed over one worker's run.
struct SupervisionSummary {
    status: TenantStatus,
    quarantines: u64,
    quarantined_ticks: u64,
}

/// Merged end-of-run state of the whole fleet. Everything except
/// `threads` and `elapsed` is identical between serial and parallel
/// runs of the same fleet + config.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-tenant outcomes, in fleet order.
    pub tenants: Vec<TenantOutcome>,
    /// All tenants' telemetry, merged in fleet order.
    pub telemetry: Telemetry,
    /// All tenants' metrics registries, merged in fleet order (merge is
    /// commutative, so the order is convention, not correctness).
    pub metrics: MetricsRegistry,
    /// Fleet-wide recommendation count per state name.
    pub by_state: BTreeMap<String, usize>,
    pub statements: u64,
    pub errors: u64,
    /// Tenants whose workers panicked and were isolated.
    pub poisoned: usize,
    /// Circuit-breaker trips across the fleet.
    pub quarantines: u64,
    pub ticks: u32,
    /// Simulated time each tenant was driven (ticks × tick interval).
    pub sim_time: Duration,
    pub threads: usize,
    pub elapsed: std::time::Duration,
}

/// What one tenant's worker hands back at quiesce.
type TenantResult = (TenantOutcome, Telemetry, MetricsRegistry);

impl FleetReport {
    fn assemble(
        results: Vec<TenantResult>,
        ticks: u32,
        sim_time: Duration,
        threads: usize,
        elapsed: std::time::Duration,
    ) -> FleetReport {
        // Quiesce: fold the shard-owned sinks in fleet order.
        let telemetry = Telemetry::merged(results.iter().map(|(_, tel, _)| tel));
        let metrics = MetricsRegistry::merged(results.iter().map(|(_, _, m)| m));
        let mut by_state: BTreeMap<String, usize> = BTreeMap::new();
        let mut statements = 0u64;
        let mut errors = 0u64;
        let mut poisoned = 0usize;
        let mut quarantines = 0u64;
        let mut tenants = Vec::with_capacity(results.len());
        for (outcome, _, _) in results {
            for (state, n) in &outcome.by_state {
                *by_state.entry(state.clone()).or_default() += n;
            }
            statements += outcome.statements;
            errors += outcome.errors;
            if outcome.status.is_poisoned() {
                poisoned += 1;
            }
            quarantines += outcome.quarantines;
            tenants.push(outcome);
        }
        FleetReport {
            tenants,
            telemetry,
            metrics,
            by_state,
            statements,
            errors,
            poisoned,
            quarantines,
            ticks,
            sim_time,
            threads,
            elapsed,
        }
    }

    /// Roll the merged metrics into the §8.1 ops table.
    pub fn dashboard(&self) -> DashboardSnapshot {
        DashboardSnapshot::from_metrics(&self.metrics, self.sim_time)
    }

    /// Canonical serialization of the end-of-run fleet state: one JSON
    /// line per tenant (in fleet order) plus the merged counters.
    /// Serial and parallel runs of the same fleet + config produce
    /// byte-identical output — the determinism contract the property
    /// and integration tests pin down.
    pub fn canonical_string(&self) -> String {
        let mut out = String::new();
        for t in &self.tenants {
            out.push_str(&serde_json::to_string(t).expect("outcome serializes"));
            out.push('\n');
        }
        out.push_str("counters:");
        for (kind, n) in self.telemetry.counters() {
            out.push_str(&format!(" {kind:?}={n}"));
        }
        out.push('\n');
        out
    }

    /// Tenant-ticks per wall-clock second — the bench's throughput metric.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return f64::INFINITY;
        }
        (self.tenants.len() as u64 * self.ticks as u64) as f64 / secs
    }
}

/// Render a caught panic payload as a short note for telemetry.
fn panic_note(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A tenant waiting to be driven; `index` is its position in the fleet,
/// which seeds every per-tenant random stream.
struct TenantTask {
    index: usize,
    tenant: Tenant,
}

/// The parallel fleet driver. See the module docs for the sharding and
/// determinism story.
#[derive(Debug, Clone, Default)]
pub struct FleetDriver {
    pub config: FleetDriverConfig,
}

impl FleetDriver {
    pub fn new(config: FleetDriverConfig) -> FleetDriver {
        FleetDriver { config }
    }

    /// Drive every tenant for `ticks` control-plane passes using
    /// `threads` worker threads (`0` and `1` both mean serial). Consumes
    /// the fleet; the merged end-of-run state comes back in the report.
    pub fn run(&self, fleet: Vec<Tenant>, ticks: u32, threads: usize) -> FleetReport {
        let start = std::time::Instant::now();
        let results = if threads > 1 && fleet.len() > 1 {
            self.run_parallel(fleet, ticks, threads)
        } else {
            fleet
                .into_iter()
                .enumerate()
                .map(|(i, t)| self.run_tenant(i, t, ticks))
                .collect()
        };
        let sim_time = Duration::from_millis(self.config.tick_interval.millis() * ticks as u64);
        FleetReport::assemble(results, ticks, sim_time, threads.max(1), start.elapsed())
    }

    /// The per-tenant control loop: workload slice, then one
    /// control-plane pass, `ticks` times. All state is owned here —
    /// nothing is shared with other tenants, which is the whole
    /// determinism argument.
    ///
    /// The loop is *supervised*: each tick runs under `catch_unwind`, so
    /// a panicking tenant is frozen and reported as
    /// [`TenantStatus::Poisoned`] instead of aborting the whole fleet;
    /// consecutive faulted ticks trip a quarantine circuit-breaker; and
    /// the chaos `crash_every_writes` knob crash-recovers the journaled
    /// store at tick boundaries. All supervision decisions derive from
    /// per-tenant state only, so they replay deterministically.
    fn run_tenant(&self, index: usize, tenant: Tenant, ticks: u32) -> TenantResult {
        let mut plane = ControlPlane::new(self.config.policy.clone());
        plane.store = StateStore::with_id_base(index as u64 * self.config.id_stride);
        if self.config.trace {
            plane.tracer = Tracer::enabled();
        }
        if let Some(seed) = self.config.fault_seed {
            // Seeded by fleet index, NOT by worker thread: replays the
            // same fault schedule wherever the tenant executes.
            let tenant_seed = seed ^ (index as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
            plane.faults = FaultInjector::uniform(
                tenant_seed,
                self.config.fault_transient_prob,
                self.config.fault_fatal_prob,
            );
        }
        for s in self.config.scripts.iter().filter(|s| s.tenant == index) {
            plane.faults.script(s.point, s.count, s.kind);
        }
        let Tenant {
            name,
            mut db,
            model,
            mut runner,
            ..
        } = tenant;
        // A cloned tenant shares its ancestor's SimClock (clone shares
        // time by design, for A/B instances). Detach so this tenant owns
        // its time stream — otherwise driving one clone of a fleet would
        // advance time for every other clone and wreck replay.
        db.detach_clock();
        // Per-tenant settings: either the uniform config, or (§8.1) a
        // hash-chosen fraction of the fleet on full auto and the rest in
        // recommend-only mode.
        let settings = match self.config.auto_fraction {
            None => self.config.settings,
            Some(f) if index_uniform01(index) < f => DbSettings::all_on(),
            Some(_) => DbSettings::default(),
        };
        let mut mdb = ManagedDb::new(db, settings, ServerSettings::default());
        // Population gauges: each shard reports itself; the fleet totals
        // appear when the registries merge at quiesce.
        plane.metrics.gauge_set("fleet.tenants", 1);
        let (auto_create, auto_drop) = effective(settings, ServerSettings::default());
        if auto_create || auto_drop {
            plane.metrics.gauge_set("fleet.auto_tenants", 1);
        }
        let t_start = mdb.db.clock().now();
        let mut run = RunSummary::default();
        let mut supervision = SupervisionSummary {
            status: TenantStatus::Completed,
            quarantines: 0,
            quarantined_ticks: 0,
        };
        let mut consecutive_faulted = 0u32;
        let mut quarantined_until = 0u32;
        let mut writes_at_last_crash = 0u64;
        for tick in 0..ticks {
            if tick < quarantined_until {
                // Cool-down: the customer's workload keeps running, the
                // tuner stays away from the tenant entirely.
                supervision.quarantined_ticks += 1;
                plane.metrics.inc("fleet.quarantined_ticks");
                runner.run_slice_into(&mut mdb.db, &model, self.config.tick_interval, &mut run);
                continue;
            }
            let injected_before = plane.faults.injected;
            let unwound = catch_unwind(AssertUnwindSafe(|| {
                runner.run_slice_into(&mut mdb.db, &model, self.config.tick_interval, &mut run);
                if plane.faults.check(FaultPoint::TenantPanic).is_some() {
                    panic!("injected tenant panic");
                }
                plane.tick(&mut mdb);
            }));
            if let Err(payload) = unwound {
                let note = panic_note(payload.as_ref());
                plane.telemetry.emit(
                    EventKind::TenantPoisoned,
                    &mdb.db.name,
                    note.clone(),
                    mdb.db.clock().now(),
                );
                supervision.status = TenantStatus::Poisoned { tick, note };
                plane.metrics.inc("fleet.poisoned");
                break;
            }
            // Chaos sweep: crash + recover at the tick boundary once
            // enough journal writes accumulated. Recovery stays out of
            // telemetry here so an intact-journal sweep replays
            // byte-identically to an uncrashed run; the recovery stats
            // remain inspectable via `StateStore::recovery_stats`.
            if let Some(k) = self.config.crash_every_writes {
                let written = plane.store.journal_len() as u64;
                if written >= writes_at_last_crash.saturating_add(k.max(1)) {
                    plane.store.crash_and_recover();
                    writes_at_last_crash = plane.store.journal_len() as u64;
                }
            }
            // Circuit breaker on consecutive faulted ticks.
            if plane.faults.injected > injected_before {
                consecutive_faulted += 1;
            } else {
                consecutive_faulted = 0;
            }
            if self.config.quarantine_threshold > 0
                && consecutive_faulted >= self.config.quarantine_threshold
            {
                consecutive_faulted = 0;
                supervision.quarantines += 1;
                plane.metrics.inc("fleet.quarantines");
                quarantined_until = tick + 1 + self.config.quarantine_cooldown;
                plane.telemetry.emit(
                    EventKind::TenantQuarantined,
                    &mdb.db.name,
                    format!("cool-down {} ticks", self.config.quarantine_cooldown),
                    mdb.db.clock().now(),
                );
            }
        }
        // Workload-impact roll-up (§8.2 flavor): fixed-count CPU cost of
        // the first observation window vs the last, per query. Counts
        // are pinned to the first window so the comparison measures
        // per-execution cost, not traffic shifts. Everything lands in
        // integer counters so fleet merging stays exact.
        let t_end = mdb.db.clock().now();
        let horizon = t_end.0.saturating_sub(t_start.0);
        let window = Duration::from_hours(24).millis().min(horizon / 2);
        if window > 0 {
            let qs = mdb.db.query_store();
            let mut measured = 0u64;
            let mut improved = 0u64;
            let mut cost_first = 0.0f64;
            let mut cost_last = 0.0f64;
            for (qid, _) in qs.known_queries() {
                let first = qs
                    .query_stats(qid, t_start, Timestamp(t_start.0 + window))
                    .cpu;
                let last = qs.query_stats(qid, Timestamp(t_end.0 - window), t_end).cpu;
                if first.count == 0 || last.count == 0 {
                    continue;
                }
                measured += 1;
                let mean_first = first.sum / first.count as f64;
                let mean_last = last.sum / last.count as f64;
                cost_first += first.count as f64 * mean_first;
                cost_last += first.count as f64 * mean_last;
                if mean_last > 0.0 && mean_first / mean_last >= 2.0 {
                    improved += 1;
                }
            }
            plane.metrics.add("workload.queries_measured", measured);
            plane.metrics.add("workload.queries_improved_2x", improved);
            if measured > 0 && cost_last <= 0.5 * cost_first {
                plane.metrics.inc("workload.dbs_cpu_halved");
            }
        }
        let outcome = TenantOutcome::collect(name, &plane, &mdb, &run, supervision);
        (outcome, plane.telemetry, plane.metrics)
    }

    /// Work-stealing execution: tenants start in a global injector,
    /// each worker keeps a local deque, and idle workers steal — first
    /// a batch from the injector, then singles from peers. A skewed
    /// tenant therefore pins one worker while the rest drain everything
    /// else; results land in a per-tenant slot so assembly order is
    /// fleet order regardless of completion order.
    fn run_parallel(
        &self,
        fleet: Vec<Tenant>,
        ticks: u32,
        threads: usize,
    ) -> Vec<TenantResult> {
        let n = fleet.len();
        let injector = Injector::new();
        for (index, tenant) in fleet.into_iter().enumerate() {
            injector.push(TenantTask { index, tenant });
        }
        let slots: Vec<Mutex<Option<TenantResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let workers: Vec<Worker<TenantTask>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<TenantTask>> = workers.iter().map(Worker::stealer).collect();

        crossbeam::thread::scope(|scope| {
            for (me, worker) in workers.into_iter().enumerate() {
                let injector = &injector;
                let stealers = &stealers;
                let slots = &slots;
                scope.spawn(move || loop {
                    let task = worker
                        .pop()
                        .or_else(|| injector.steal_batch_and_pop(&worker).success())
                        .or_else(|| {
                            stealers
                                .iter()
                                .enumerate()
                                .filter(|(other, _)| *other != me)
                                .find_map(|(_, s)| s.steal().success())
                        });
                    let Some(TenantTask { index, tenant }) = task else {
                        // Injector and every deque drained: quiesce.
                        break;
                    };
                    let result = self.run_tenant(index, tenant, ticks);
                    *slots[index].lock().unwrap() = Some(result);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("no poisoned slot")
                    .expect("every tenant was driven exactly once")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlmini::engine::ServiceTier;
    use workload::fleet::{generate_fleet, TierMix};

    fn small_policy() -> PlanePolicy {
        PlanePolicy {
            analysis_interval: Duration::from_hours(2),
            validation_min_wait: Duration::from_hours(1),
            ..PlanePolicy::default()
        }
    }

    fn tiny_fleet(n: usize, seed: u64) -> Vec<Tenant> {
        generate_fleet(
            n,
            TierMix {
                basic: 1.0,
                standard: 0.0,
                premium: 0.0,
            },
            seed,
        )
    }

    #[test]
    fn serial_run_produces_per_tenant_state() {
        let driver = FleetDriver::new(FleetDriverConfig {
            policy: small_policy(),
            ..FleetDriverConfig::default()
        });
        let report = driver.run(tiny_fleet(3, 11), 4, 1);
        assert_eq!(report.tenants.len(), 3);
        assert!(report.statements > 0);
        // Disjoint id blocks: each tenant's store started at its stride.
        assert_eq!(report.threads, 1);
        assert_eq!(report.ticks, 4);
    }

    #[test]
    fn parallel_matches_serial_byte_for_byte() {
        let driver = FleetDriver::new(FleetDriverConfig {
            policy: small_policy(),
            ..FleetDriverConfig::default()
        });
        let serial = driver.run(tiny_fleet(4, 77), 3, 1);
        let parallel = driver.run(tiny_fleet(4, 77), 3, 4);
        assert_eq!(serial.canonical_string(), parallel.canonical_string());
    }

    #[test]
    fn faults_are_seeded_per_tenant_not_per_thread() {
        let driver = FleetDriver::new(FleetDriverConfig {
            policy: small_policy(),
            fault_seed: Some(42),
            fault_transient_prob: 0.3,
            fault_fatal_prob: 0.05,
            ..FleetDriverConfig::default()
        });
        let serial = driver.run(tiny_fleet(4, 5), 3, 1);
        let parallel = driver.run(tiny_fleet(4, 5), 3, 3);
        assert_eq!(serial.canonical_string(), parallel.canonical_string());
    }

    #[test]
    fn cloned_fleets_replay_independently() {
        // Clones share SimClocks; the driver must detach them so a
        // fleet can be cloned, driven, and the original driven again
        // with byte-identical results (what every serial-vs-parallel
        // bench does).
        let driver = FleetDriver::new(FleetDriverConfig {
            policy: small_policy(),
            ..FleetDriverConfig::default()
        });
        let fleet = tiny_fleet(3, 21);
        let first = driver.run(fleet.clone(), 3, 2);
        let second = driver.run(fleet, 3, 2);
        assert_eq!(first.canonical_string(), second.canonical_string());
    }

    #[test]
    fn mixed_tiers_survive_the_driver() {
        let fleet = generate_fleet(
            4,
            TierMix {
                basic: 0.5,
                standard: 0.25,
                premium: 0.25,
            },
            9,
        );
        assert!(fleet.iter().any(|t| t.tier != ServiceTier::Basic));
        let driver = FleetDriver::new(FleetDriverConfig {
            policy: small_policy(),
            ..FleetDriverConfig::default()
        });
        let report = driver.run(fleet, 2, 2);
        assert_eq!(report.tenants.len(), 4);
    }
}
