//! Parallel fleet control loop with deterministic replay.
//!
//! The paper's service runs one control plane per region over hundreds of
//! thousands of databases; control-plane passes for distinct databases
//! are embarrassingly parallel because every piece of tuning state is
//! per-database. This module exploits exactly that: the fleet is split
//! into *shard-owned* tenant states (each tenant gets its own journaled
//! [`StateStore`] with a disjoint [`RecoId`](crate::state::RecoId)
//! block, its own [`Telemetry`] sink, and its own per-tenant-seeded
//! [`FaultInjector`]), and a work-stealing pool of OS threads drives
//! `workload → ControlPlane::tick` loops for many tenants concurrently.
//! No global mutex is touched on the hot path; global aggregates are
//! produced by merging the per-tenant sinks **in fleet order** at
//! quiesce.
//!
//! Determinism: every random decision is drawn from state seeded by the
//! tenant's *fleet index* — never by the executing thread — so a run
//! with `threads = N` produces byte-identical end-of-run fleet state
//! ([`FleetReport::canonical_string`]) to a `threads = 1` serial run, no
//! matter how tasks were stolen. That property is what makes fleet-scale
//! failures replayable: re-run serially with the same seeds and step
//! through the one tenant that misbehaved.
//!
//! # Sparse scheduling
//!
//! A fleet is mostly idle: at any instant only a few percent of tenants
//! have due control-plane work (an analysis interval elapsing, a retry
//! backoff expiring, a validation window closing). Under
//! [`SchedulingMode::Sparse`] each control pass returns a
//! [`WakeSchedule`](crate::stages::WakeSchedule) naming the next instant
//! any stage could act, the driver maps it onto the tick grid, and ticks
//! before that wake run only the tenant's workload slice — the control
//! pass is skipped entirely. The serial driver indexes wakes in a
//! [`WakeupHeap`] keyed `(due_tick, tenant_index)` so a fleet step pops
//! exactly the due tenants; the parallel driver, which owns one tenant
//! per task, compares the tick against the tenant's recorded wake. A
//! skipped pass is unobservable — a dense control pass with no due work
//! changes no state, emits no telemetry, and draws no fault randomness —
//! so sparse and dense runs produce byte-identical
//! [`FleetReport::canonical_string`] output. Dense mode is kept as the
//! replay oracle for exactly that property. Scripted
//! [`FaultPoint::JournalTear`] faults are probed at the start of every
//! non-quarantined tick — keyed by `(tenant, tick)`, not by executed
//! control passes — so their firing ticks are identical in both modes; a
//! tear forces that tick's control pass (dense would have run it anyway)
//! so the recovered state is reprocessed at the same instant everywhere.

use crate::faults::{FaultInjector, FaultKind, FaultPoint};
use crate::metrics::MetricsRegistry;
use crate::plane::{ControlPlane, ManagedDb, PlanePolicy};
use crate::region::DashboardSnapshot;
use crate::state::{effective, DbSettings, ServerSettings};
use crate::store::StateStore;
use crate::telemetry::{EventKind, Telemetry};
use crate::trace::Tracer;
use crate::wakeup::{WakeupHeap, NEVER};
use crossbeam::deque::{Injector, Stealer, Worker};
use sqlmini::clock::{Duration, Timestamp};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use workload::fleet::Tenant;
use workload::model::WorkloadModel;
use workload::runner::{RunSummary, WorkloadRunner};

/// A deterministic fault script targeting one tenant of the fleet: the
/// next `count` checks at `point` on that tenant's injector fail with
/// `kind`. Scripts stack (they append to the tenant's queue), composing
/// with any stochastic `fault_seed` configuration.
#[derive(Debug, Clone)]
pub struct TenantScript {
    /// Fleet index of the tenant the script applies to.
    pub tenant: usize,
    pub point: FaultPoint,
    pub count: u32,
    pub kind: FaultKind,
    /// When set, the script arms at the start of this tick instead of at
    /// worker setup — keying the fault by `(tenant, tick)` so its firing
    /// point is identical under dense and sparse scheduling.
    pub at_tick: Option<u64>,
}

/// How the fleet driver decides which ticks take a control-plane pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SchedulingMode {
    /// Every non-quarantined tick takes a control pass. The replay
    /// oracle: trivially correct, O(fleet) control work per tick.
    Dense,
    /// Control passes run only when the tenant's
    /// [`WakeSchedule`](crate::stages::WakeSchedule) says work could be
    /// due — O(active) control work per tick, byte-identical end state
    /// to `Dense`.
    Sparse,
}

impl Default for SchedulingMode {
    /// Sparse ships as the default: it is byte-equivalent to the dense
    /// oracle (pinned by `tests/sparse_dense.rs`) and does O(active)
    /// control work per tick instead of O(fleet). Dense remains
    /// available as the replay oracle for equivalence tests.
    fn default() -> SchedulingMode {
        SchedulingMode::Sparse
    }
}

/// Knobs for a fleet run. Everything that influences tenant behavior
/// lives here, so a config + fleet seed fully determines the outcome.
#[derive(Debug, Clone)]
pub struct FleetDriverConfig {
    pub policy: PlanePolicy,
    /// Simulated time advanced per tick (workload runs for the whole
    /// interval, then the control plane takes one pass).
    pub tick_interval: Duration,
    /// Auto-indexing settings applied to every tenant.
    pub settings: DbSettings,
    /// When set, each tenant gets a stochastic fault injector seeded
    /// from this value and the tenant's fleet index.
    pub fault_seed: Option<u64>,
    pub fault_transient_prob: f64,
    pub fault_fatal_prob: f64,
    /// Each tenant's store allocates RecoIds from
    /// `index * id_stride`, keeping ids disjoint fleet-wide.
    pub id_stride: u64,
    /// Circuit breaker: this many *consecutive* ticks with at least one
    /// injected fault quarantines the tenant (`0` disables). Counted per
    /// tenant from per-tenant state only, so it replays deterministically.
    pub quarantine_threshold: u32,
    /// Ticks a quarantined tenant's control plane sits out. The tenant's
    /// workload keeps running — the customer's database stays up; only
    /// the tuner backs away.
    pub quarantine_cooldown: u32,
    /// Chaos knob: crash + recover each tenant's store at the first tick
    /// boundary after every `k`-th journal write. Tick boundaries are
    /// the process-restart points (no recommendation is ever mid-flight
    /// there), so a sweep with an intact journal must replay
    /// byte-identically to an uncrashed run.
    pub crash_every_writes: Option<u64>,
    /// Chaos knob: crash + recover each tenant's store at the *start* of
    /// every `k`-th tick (`0`/`None` disables). A pure function of the
    /// tick number — identical under dense/sparse scheduling and any
    /// thread count — so end-to-end runs (e.g. `fleet_smoke
    /// --crash-every`) exercise recovery without perturbing replay.
    pub crash_every_ticks: Option<u32>,
    /// Deterministic per-tenant fault scripts, applied at worker setup.
    pub scripts: Vec<TenantScript>,
    /// When set, this fraction of tenants (chosen by a pure hash of the
    /// fleet index — thread-independent) runs with auto-implementation
    /// fully ON and the rest in recommend-only mode, overriding
    /// `settings`. Models §8.1's "about a quarter of eligible databases
    /// have auto-implementation enabled".
    pub auto_fraction: Option<f64>,
    /// Enable per-tenant tick tracing (span trees on each tenant's
    /// control plane). Off by default: traces are a debugging surface,
    /// not part of the canonical fleet state.
    pub trace: bool,
    /// Dense (oracle) vs sparse (due-time-indexed) control scheduling.
    pub scheduling: SchedulingMode,
    /// Whether each tenant's engine memoizes compiled plans across
    /// executions. `false` recompiles every statement — the differential
    /// oracle for the plan-cache equivalence tests, byte-identical to
    /// the cached mode in everything but speed.
    pub plan_cache: bool,
}

impl Default for FleetDriverConfig {
    fn default() -> FleetDriverConfig {
        FleetDriverConfig {
            policy: PlanePolicy::default(),
            tick_interval: Duration::from_hours(1),
            settings: DbSettings::all_on(),
            fault_seed: None,
            fault_transient_prob: 0.0,
            fault_fatal_prob: 0.0,
            id_stride: 1_000_000,
            quarantine_threshold: 0,
            quarantine_cooldown: 0,
            crash_every_writes: None,
            crash_every_ticks: None,
            scripts: Vec::new(),
            auto_fraction: None,
            trace: false,
            scheduling: SchedulingMode::default(),
            plan_cache: true,
        }
    }
}

/// Deterministic 64-bit hash of a fleet index and a salt — splitmix64
/// finalizer. The raw-bits form of [`index_hash01`], shared with the
/// shard assignment (which needs integer slots, not a float draw).
pub fn index_hash_bits(index: usize, salt: u64) -> u64 {
    let mut z = (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z
}

/// Deterministic uniform draw in [0, 1) from a fleet index and a salt —
/// splitmix64 finalizer, so sampled assignments replay regardless of
/// threading and of any fault seeding. Distinct salts give independent
/// streams over the same fleet (auto-implement assignment vs flight
/// cohorts vs shard slots).
pub fn index_hash01(index: usize, salt: u64) -> f64 {
    (index_hash_bits(index, salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// FNV-1a offset basis — seed value for [`fnv1a64_extend`].
pub(crate) const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Extend an FNV-1a digest with more bytes. Streaming form so the
/// sharded region driver can digest a million canonical tenant lines
/// without ever holding the concatenated string.
pub(crate) fn fnv1a64_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The auto-fraction stream (historical salt, kept byte-identical).
fn index_uniform01(index: usize) -> f64 {
    index_hash01(index, 0xA070_F8AC)
}

/// How a tenant's worker finished.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TenantStatus {
    /// All ticks ran (possibly with quarantine windows).
    Completed,
    /// The worker panicked at `tick`; the supervisor caught the unwind,
    /// froze the tenant's state as-is, and kept the rest of the fleet
    /// running.
    Poisoned { tick: u32, note: String },
}

impl TenantStatus {
    pub fn is_poisoned(&self) -> bool {
        matches!(self, TenantStatus::Poisoned { .. })
    }
}

/// End-of-run state of one tenant, in a canonically serializable form.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantOutcome {
    pub name: String,
    /// Recommendations ever tracked for this tenant.
    pub recommendations: usize,
    /// Recommendation count per state name.
    pub by_state: BTreeMap<String, usize>,
    /// Validation verdict counters (the `Validation*` event kinds).
    pub verdicts: BTreeMap<String, u64>,
    /// Fault/failure counters (transient + fatal + lock timeouts).
    pub faults: BTreeMap<String, u64>,
    pub incidents: usize,
    /// Logical journal writes ever made — proxy for state-store write
    /// traffic. Monotonic across compaction and crash-recovery
    /// (checkpoint frames excluded), so compaction-on and compaction-off
    /// runs agree on it byte-for-byte.
    pub journal_writes: u64,
    /// Final index names on the tenant database, sorted.
    pub indexes: Vec<String>,
    pub statements: u64,
    pub errors: u64,
    pub rows_returned: u64,
    /// How the worker finished (panics surface here, not as aborts).
    pub status: TenantStatus,
    /// Circuit-breaker trips for this tenant.
    pub quarantines: u64,
    /// Ticks spent in quarantine cool-down (control plane idle).
    pub quarantined_ticks: u64,
}

impl TenantOutcome {
    fn collect(
        name: String,
        plane: &ControlPlane,
        mdb: &ManagedDb,
        run: &RunSummary,
        supervision: SupervisionSummary,
    ) -> TenantOutcome {
        const VERDICT_KINDS: [EventKind; 4] = [
            EventKind::ValidationImproved,
            EventKind::ValidationInconclusive,
            EventKind::ValidationRegressed,
            EventKind::ValidationNoData,
        ];
        const FAULT_KINDS: [EventKind; 7] = [
            EventKind::ImplementFailedTransient,
            EventKind::ImplementFailedFatal,
            EventKind::RevertFailedTransient,
            EventKind::DropLockTimedOut,
            EventKind::DtaSessionAborted,
            EventKind::TenantQuarantined,
            EventKind::TenantPoisoned,
        ];
        let counter_map = |kinds: &[EventKind]| -> BTreeMap<String, u64> {
            kinds
                .iter()
                .map(|k| (format!("{k:?}"), plane.telemetry.count(*k)))
                .filter(|(_, v)| *v > 0)
                .collect()
        };
        let mut indexes: Vec<String> = mdb
            .db
            .catalog()
            .indexes()
            .map(|(_, def)| def.name.clone())
            .collect();
        indexes.sort_unstable();
        TenantOutcome {
            name,
            recommendations: plane.store.len(),
            by_state: plane.store.count_by_state(),
            verdicts: counter_map(&VERDICT_KINDS),
            faults: counter_map(&FAULT_KINDS),
            incidents: plane.telemetry.incidents().len(),
            journal_writes: plane.store.journal_writes(),
            indexes,
            statements: run.statements,
            errors: run.errors,
            rows_returned: run.rows_returned,
            status: supervision.status,
            quarantines: supervision.quarantines,
            quarantined_ticks: supervision.quarantined_ticks,
        }
    }
}

/// What the per-tenant supervisor observed over one worker's run.
struct SupervisionSummary {
    status: TenantStatus,
    quarantines: u64,
    quarantined_ticks: u64,
}

/// Merged end-of-run state of the whole fleet. Everything except
/// `threads`, `elapsed`, `scheduling`, and `scheduler_metrics` is
/// identical between serial and parallel runs — and between dense and
/// sparse runs — of the same fleet + config.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-tenant outcomes, in fleet order.
    pub tenants: Vec<TenantOutcome>,
    /// All tenants' telemetry, merged in fleet order.
    pub telemetry: Telemetry,
    /// All tenants' metrics registries, merged in fleet order (merge is
    /// commutative, so the order is convention, not correctness).
    pub metrics: MetricsRegistry,
    /// Scheduler bookkeeping (control passes executed vs skipped),
    /// merged from per-tenant shards. Kept out of `metrics` so the
    /// canonical surface stays mode-independent.
    pub scheduler_metrics: MetricsRegistry,
    /// Which scheduling mode produced this report.
    pub scheduling: SchedulingMode,
    /// Fleet-wide recommendation count per state name.
    pub by_state: BTreeMap<String, usize>,
    pub statements: u64,
    pub errors: u64,
    /// Tenants whose workers panicked and were isolated.
    pub poisoned: usize,
    /// Circuit-breaker trips across the fleet.
    pub quarantines: u64,
    pub ticks: u32,
    /// Simulated time each tenant was driven (ticks × tick interval).
    pub sim_time: Duration,
    pub threads: usize,
    pub elapsed: std::time::Duration,
}

/// What one tenant's worker hands back at quiesce: outcome, telemetry,
/// canonical metrics, and the (non-canonical) scheduler counters.
pub(crate) type TenantResult = (TenantOutcome, Telemetry, MetricsRegistry, MetricsRegistry);

impl FleetReport {
    pub(crate) fn assemble(
        results: Vec<TenantResult>,
        scheduling: SchedulingMode,
        ticks: u32,
        sim_time: Duration,
        threads: usize,
        elapsed: std::time::Duration,
    ) -> FleetReport {
        // Quiesce: fold the shard-owned sinks in fleet order.
        let telemetry = Telemetry::merged(results.iter().map(|(_, tel, _, _)| tel));
        let metrics = MetricsRegistry::merged(results.iter().map(|(_, _, m, _)| m));
        let scheduler_metrics = MetricsRegistry::merged(results.iter().map(|(_, _, _, s)| s));
        let mut by_state: BTreeMap<String, usize> = BTreeMap::new();
        let mut statements = 0u64;
        let mut errors = 0u64;
        let mut poisoned = 0usize;
        let mut quarantines = 0u64;
        let mut tenants = Vec::with_capacity(results.len());
        for (outcome, _, _, _) in results {
            for (state, n) in &outcome.by_state {
                *by_state.entry(state.clone()).or_default() += n;
            }
            statements += outcome.statements;
            errors += outcome.errors;
            if outcome.status.is_poisoned() {
                poisoned += 1;
            }
            quarantines += outcome.quarantines;
            tenants.push(outcome);
        }
        FleetReport {
            tenants,
            telemetry,
            metrics,
            scheduler_metrics,
            scheduling,
            by_state,
            statements,
            errors,
            poisoned,
            quarantines,
            ticks,
            sim_time,
            threads,
            elapsed,
        }
    }

    /// Roll the merged metrics into the §8.1 ops table.
    pub fn dashboard(&self) -> DashboardSnapshot {
        DashboardSnapshot::from_metrics(&self.metrics, self.sim_time)
    }

    /// The §8.1 ops table plus the fleet-scheduler and plan-cache blocks
    /// (driver bookkeeping). Mode-dependent by construction — use
    /// [`FleetReport::dashboard`] when comparing runs across modes or
    /// across cache settings.
    pub fn dashboard_with_scheduler(&self) -> DashboardSnapshot {
        scheduler_annotated(self.dashboard(), &self.scheduler_metrics)
    }

    /// Control-plane passes that actually ran.
    pub fn control_ticks_executed(&self) -> u64 {
        self.scheduler_metrics.counter("scheduler.ticks_executed")
    }

    /// Control-plane passes the sparse scheduler proved unnecessary.
    pub fn control_ticks_skipped(&self) -> u64 {
        self.scheduler_metrics.counter("scheduler.ticks_skipped")
    }

    /// Statement executions served by a memoized plan, fleet-wide.
    pub fn plan_cache_hits(&self) -> u64 {
        self.scheduler_metrics.counter("plan_cache.hits")
    }

    /// Statement executions that compiled a plan (cache miss or cache
    /// disabled).
    pub fn plan_cache_misses(&self) -> u64 {
        self.scheduler_metrics.counter("plan_cache.misses")
    }

    /// Cached plans discarded because the tenant's catalog fingerprint
    /// moved (index DDL, stats refresh, schema change, restart).
    pub fn plan_cache_invalidations(&self) -> u64 {
        self.scheduler_metrics.counter("plan_cache.invalidations")
    }

    /// Store crash-recoveries across the fleet (chaos sweeps + faults).
    pub fn store_recoveries(&self) -> u64 {
        self.scheduler_metrics.counter("journal.recoveries")
    }

    /// Checkpoint frames written by journal compaction, fleet-wide.
    pub fn checkpoints_written(&self) -> u64 {
        self.scheduler_metrics
            .counter("journal.checkpoints_written")
    }

    /// Journal frames truncated away by compaction, fleet-wide.
    pub fn frames_compacted(&self) -> u64 {
        self.scheduler_metrics.counter("journal.frames_compacted")
    }

    /// Journal bytes reclaimed by compaction, fleet-wide.
    pub fn journal_bytes_reclaimed(&self) -> u64 {
        self.scheduler_metrics.counter("journal.bytes_reclaimed")
    }

    /// Recoveries that stepped down the checkpoint fallback ladder.
    pub fn fallback_recoveries(&self) -> u64 {
        self.scheduler_metrics
            .counter("journal.fallback_recoveries")
    }

    /// End-of-run journal bytes summed over all tenant stores.
    pub fn journal_bytes(&self) -> u64 {
        self.scheduler_metrics.counter("journal.bytes")
    }

    /// Fleet-wide plan-cache hit rate in [0, 1].
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits() + self.plan_cache_misses();
        if total == 0 {
            return 0.0;
        }
        self.plan_cache_hits() as f64 / total as f64
    }

    /// Canonical serialization of the end-of-run fleet state: one JSON
    /// line per tenant (in fleet order) plus the merged counters.
    /// Serial and parallel runs of the same fleet + config produce
    /// byte-identical output — the determinism contract the property
    /// and integration tests pin down. Sparse and dense runs do too:
    /// scheduler bookkeeping deliberately lives outside this surface.
    pub fn canonical_string(&self) -> String {
        let mut out = String::new();
        for t in &self.tenants {
            out.push_str(&canonical_line(t));
        }
        out.push_str(&counters_line(&self.telemetry));
        out
    }

    /// Streaming digest of [`FleetReport::canonical_string`]: the FNV-1a
    /// fold of each tenant line's own FNV-1a hash (in fleet order),
    /// extended with the counters line. Two reports have equal digests
    /// iff their canonical strings are byte-identical (modulo hash
    /// collisions) — this is the surface the sharded region driver
    /// compares at fleet sizes where retaining a million `TenantOutcome`s
    /// is not an option.
    pub fn canonical_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for t in &self.tenants {
            let line = fnv1a64_extend(FNV_OFFSET, canonical_line(t).as_bytes());
            h = fnv1a64_extend(h, &line.to_le_bytes());
        }
        fnv1a64_extend(h, counters_line(&self.telemetry).as_bytes())
    }

    /// Tenant-ticks per wall-clock second — the bench's throughput metric.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return f64::INFINITY;
        }
        (self.tenants.len() as u64 * self.ticks as u64) as f64 / secs
    }
}

/// Attach the driver-bookkeeping blocks (fleet scheduler, plan cache,
/// journal/recovery) from a merged scheduler registry to a §8.1
/// dashboard. Shared by [`FleetReport::dashboard_with_scheduler`] and
/// the sharded region report, so both annotate identically.
pub(crate) fn scheduler_annotated(
    dash: DashboardSnapshot,
    sched: &MetricsRegistry,
) -> DashboardSnapshot {
    dash.with_scheduler(
        sched.counter("scheduler.ticks_executed"),
        sched.counter("scheduler.ticks_skipped"),
    )
    .with_plan_cache(
        sched.counter("plan_cache.hits"),
        sched.counter("plan_cache.misses"),
        sched.counter("plan_cache.invalidations"),
    )
    .with_journal(
        sched.counter("journal.checkpoints_written"),
        sched.counter("journal.frames_compacted"),
        sched.counter("journal.bytes_reclaimed"),
        sched.counter("journal.fallback_recoveries"),
    )
}

/// One tenant's line of the canonical fleet serialization (JSON +
/// newline). Shared by [`FleetReport::canonical_string`] and the sharded
/// region driver's streaming digest, so both surfaces are byte-defined
/// by the same formatter.
pub fn canonical_line(outcome: &TenantOutcome) -> String {
    let mut line = serde_json::to_string(outcome).expect("outcome serializes");
    line.push('\n');
    line
}

/// The trailing counters line of the canonical fleet serialization.
pub fn counters_line(telemetry: &Telemetry) -> String {
    let mut out = String::from("counters:");
    for (kind, n) in telemetry.counters() {
        out.push_str(&format!(" {kind:?}={n}"));
    }
    out.push('\n');
    out
}

/// Render a caught panic payload as a short note for telemetry.
fn panic_note(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A tenant waiting to be driven. `index` is its *global* fleet index —
/// the value that seeds every per-tenant random stream — while `pos` is
/// its position in the slice being driven (they coincide for unsharded
/// runs; a shard's slice holds a scattered subset of global indices).
struct TenantTask {
    pos: usize,
    index: usize,
    tenant: Tenant,
}

/// One tenant's live control loop: everything [`FleetDriver::step_tenant`]
/// needs to run one tick, owned by exactly one executor at a time. All
/// supervision and scheduling state derives from these per-tenant fields
/// only, which is the determinism argument.
struct TenantWorker {
    index: usize,
    name: String,
    plane: ControlPlane,
    mdb: ManagedDb,
    model: WorkloadModel,
    runner: WorkloadRunner,
    run: RunSummary,
    supervision: SupervisionSummary,
    consecutive_faulted: u32,
    quarantined_until: u32,
    writes_at_last_crash: u64,
    t_start: Timestamp,
    /// First tick on which control work could be due ([`NEVER`] parks
    /// the tenant). Starts at 0: the first pass must run, there is no
    /// schedule yet.
    next_wake: u64,
    /// Scheduler counters, shard-owned like every other sink but merged
    /// into [`FleetReport::scheduler_metrics`], not the canonical
    /// registry.
    sched: MetricsRegistry,
    /// Poisoned: the worker is frozen, no further ticks run.
    done: bool,
}

/// The parallel fleet driver. See the module docs for the sharding and
/// determinism story.
#[derive(Debug, Clone, Default)]
pub struct FleetDriver {
    pub config: FleetDriverConfig,
}

impl FleetDriver {
    pub fn new(config: FleetDriverConfig) -> FleetDriver {
        FleetDriver { config }
    }

    /// Drive every tenant for `ticks` control-plane passes using
    /// `threads` worker threads (`0` and `1` both mean serial). Consumes
    /// the fleet; the merged end-of-run state comes back in the report.
    pub fn run(&self, fleet: Vec<Tenant>, ticks: u32, threads: usize) -> FleetReport {
        let fleet = fleet.into_iter().enumerate().collect();
        self.run_indexed(fleet, ticks, threads)
    }

    /// Drive a slice of a larger fleet: each tenant carries its *global*
    /// fleet index, which seeds its random streams, its RecoId block,
    /// and its auto/cohort assignments — so a shard driving
    /// `[(3, t3), (11, t11)]` produces, tenant for tenant, exactly the
    /// results an unsharded run over the whole fleet would. `run` is the
    /// special case where positions and indices coincide. Report order
    /// follows the slice order passed in.
    pub fn run_indexed(
        &self,
        fleet: Vec<(usize, Tenant)>,
        ticks: u32,
        threads: usize,
    ) -> FleetReport {
        let start = std::time::Instant::now();
        let results = if threads > 1 && fleet.len() > 1 {
            self.run_parallel(fleet, ticks, threads)
        } else if self.config.scheduling == SchedulingMode::Sparse {
            self.run_serial_sparse(fleet, ticks)
        } else {
            fleet
                .into_iter()
                .map(|(i, t)| self.run_tenant(i, t, ticks))
                .collect()
        };
        let sim_time = Duration::from_millis(self.config.tick_interval.millis() * ticks as u64);
        FleetReport::assemble(
            results,
            self.config.scheduling,
            ticks,
            sim_time,
            threads.max(1),
            start.elapsed(),
        )
    }

    /// Set up one tenant's worker: journaled store with a disjoint id
    /// block, index-seeded fault injector, scripts, per-tenant settings,
    /// and a detached clock.
    fn worker(&self, index: usize, tenant: Tenant) -> TenantWorker {
        let mut plane = ControlPlane::new(self.config.policy.clone());
        plane.store = StateStore::with_id_base(index as u64 * self.config.id_stride);
        if self.config.trace {
            plane.tracer = Tracer::enabled();
        }
        if let Some(seed) = self.config.fault_seed {
            // Seeded by fleet index, NOT by worker thread: replays the
            // same fault schedule wherever the tenant executes.
            let tenant_seed = seed ^ (index as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
            plane.faults = FaultInjector::uniform(
                tenant_seed,
                self.config.fault_transient_prob,
                self.config.fault_fatal_prob,
            );
        }
        for s in self
            .config
            .scripts
            .iter()
            .filter(|s| s.tenant == index && s.at_tick.is_none())
        {
            plane.faults.script(s.point, s.count, s.kind);
        }
        let Tenant {
            name,
            mut db,
            model,
            runner,
            ..
        } = tenant;
        // A cloned tenant shares its ancestor's SimClock (clone shares
        // time by design, for A/B instances). Detach so this tenant owns
        // its time stream — otherwise driving one clone of a fleet would
        // advance time for every other clone and wreck replay.
        db.detach_clock();
        db.config.plan_cache = self.config.plan_cache;
        // Per-tenant settings: either the uniform config, or (§8.1) a
        // hash-chosen fraction of the fleet on full auto and the rest in
        // recommend-only mode.
        let settings = match self.config.auto_fraction {
            None => self.config.settings,
            Some(f) if index_uniform01(index) < f => DbSettings::all_on(),
            Some(_) => DbSettings::default(),
        };
        let mdb = ManagedDb::new(db, settings, ServerSettings::default());
        // Population gauges: each shard reports itself; the fleet totals
        // appear when the registries merge at quiesce.
        plane.metrics.gauge_set("fleet.tenants", 1);
        let (auto_create, auto_drop) = effective(settings, ServerSettings::default());
        if auto_create || auto_drop {
            plane.metrics.gauge_set("fleet.auto_tenants", 1);
        }
        let t_start = mdb.db.clock().now();
        TenantWorker {
            index,
            name,
            plane,
            mdb,
            model,
            runner,
            run: RunSummary::default(),
            supervision: SupervisionSummary {
                status: TenantStatus::Completed,
                quarantines: 0,
                quarantined_ticks: 0,
            },
            consecutive_faulted: 0,
            quarantined_until: 0,
            writes_at_last_crash: 0,
            t_start,
            next_wake: 0,
            sched: MetricsRegistry::new(),
            done: false,
        }
    }

    /// Freeze a panicked worker: emit the poison event, record the
    /// status, and mark the worker done so no further ticks run.
    fn poison(&self, w: &mut TenantWorker, tick: u32, payload: Box<dyn std::any::Any + Send>) {
        let note = panic_note(payload.as_ref());
        w.plane.telemetry.emit(
            EventKind::TenantPoisoned,
            &w.mdb.db.name,
            note.clone(),
            w.mdb.db.clock().now(),
        );
        w.supervision.status = TenantStatus::Poisoned { tick, note };
        w.plane.metrics.inc("fleet.poisoned");
        w.done = true;
    }

    /// One tick of one tenant. `control_due` is the scheduler's verdict
    /// (always true in dense mode); quarantine takes precedence either
    /// way. The workload slice runs on every path — only the control
    /// pass is ever skipped. Returns whether a control pass executed, so
    /// the serial sparse driver can refresh its wake heap after a pass
    /// it did not itself schedule (see the journal-tear probe below).
    ///
    /// The tick is *supervised*: it runs under `catch_unwind`, so a
    /// panicking tenant is frozen and reported as
    /// [`TenantStatus::Poisoned`] instead of aborting the whole fleet;
    /// consecutive faulted ticks trip a quarantine circuit-breaker; and
    /// the chaos `crash_every_writes` knob crash-recovers the journaled
    /// store at tick boundaries. All supervision decisions derive from
    /// per-tenant state only, so they replay deterministically.
    fn step_tenant(&self, w: &mut TenantWorker, tick: u32, control_due: bool) -> bool {
        let interval = self.config.tick_interval;
        if tick < w.quarantined_until {
            // Cool-down: the customer's workload keeps running, the
            // tuner stays away from the tenant entirely.
            w.supervision.quarantined_ticks += 1;
            w.plane.metrics.inc("fleet.quarantined_ticks");
            w.runner
                .run_slice_into(&mut w.mdb.db, &w.model, interval, &mut w.run);
            return false;
        }
        // Arm tick-keyed scripts, then take the tick-boundary
        // process-death probe. JournalTear models the process dying
        // between ticks, so it is consumed here — keyed by
        // `(tenant, tick)`, identical under dense and sparse scheduling —
        // not inside the control pass, where sparse skips would shift its
        // firing tick. The count toward the quarantine breaker starts
        // here too, so a tear is a faulted tick in both modes.
        for s in self
            .config
            .scripts
            .iter()
            .filter(|s| s.tenant == w.index && s.at_tick == Some(tick as u64))
        {
            w.plane.faults.script(s.point, s.count, s.kind);
        }
        let injected_before = w.plane.faults.injected;
        let mut control_due = control_due;
        // Chaos knob: a process restart at the start of every k-th tick.
        // Silent (no telemetry), like the crash_every_writes sweep: an
        // intact-journal recovery must replay byte-identically to an
        // uncrashed run. Only a re-park (a reco caught mid-flight) can
        // invalidate the recorded schedule; run the pass then.
        if let Some(k) = self.config.crash_every_ticks {
            if k > 0 && tick > 0 && tick.is_multiple_of(k) {
                let report = w.plane.store.crash_and_recover();
                if !report.reparked.is_empty() {
                    control_due = true;
                }
            }
        }
        if w.plane.faults.check(FaultPoint::JournalTear).is_some() {
            let now = w.mdb.db.clock().now();
            let name = w.mdb.db.name.clone();
            w.plane.store.corrupt_journal_tail();
            w.plane.recover_store(&name, now);
            // Recovery may have reparked mid-flight recommendations,
            // invalidating the recorded wake schedule. Run the pass this
            // tick — dense would have — instead of trusting it.
            control_due = true;
        }
        if !control_due {
            // Sparse skip: the schedule proves no stage has due work, so
            // the control pass would be a no-op — run only the workload.
            // The TenantPanic probe still fires (it is a per-tick fault
            // point, not a control-plane one), and the skip resets the
            // breaker exactly as a dense no-op pass would (a no-op pass
            // injects nothing).
            w.sched.inc("scheduler.ticks_skipped");
            let unwound = catch_unwind(AssertUnwindSafe(|| {
                w.runner
                    .run_slice_into(&mut w.mdb.db, &w.model, interval, &mut w.run);
                if w.plane.faults.check(FaultPoint::TenantPanic).is_some() {
                    panic!("injected tenant panic");
                }
            }));
            if let Err(payload) = unwound {
                self.poison(w, tick, payload);
                return false;
            }
            if self.config.trace {
                let now = w.mdb.db.clock().now();
                w.plane.tracer.start("tick.skipped", now);
                w.plane.tracer.end(now);
            }
            w.consecutive_faulted = 0;
            return false;
        }
        w.sched.inc("scheduler.ticks_executed");
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            w.runner
                .run_slice_into(&mut w.mdb.db, &w.model, interval, &mut w.run);
            if w.plane.faults.check(FaultPoint::TenantPanic).is_some() {
                panic!("injected tenant panic");
            }
            w.plane.tick(&mut w.mdb)
        }));
        match unwound {
            Err(payload) => {
                self.poison(w, tick, payload);
                return false;
            }
            Ok(schedule) => {
                let now = w.mdb.db.clock().now();
                w.next_wake = schedule
                    .next_wake_tick(now, tick as u64, interval)
                    .unwrap_or(NEVER);
            }
        }
        // Chaos sweep: crash + recover at the tick boundary once
        // enough journal writes accumulated. Recovery stays out of
        // telemetry here so an intact-journal sweep replays
        // byte-identically to an uncrashed run; the recovery stats
        // remain inspectable via `StateStore::recovery_stats`.
        if let Some(k) = self.config.crash_every_writes {
            let written = w.plane.store.journal_writes();
            if written >= w.writes_at_last_crash.saturating_add(k.max(1)) {
                w.plane.store.crash_and_recover();
                w.writes_at_last_crash = w.plane.store.journal_writes();
                // Re-derive the wake from the *recovered* schedule.
                // Recovery may have reparked mid-flight recommendations
                // (which invalidates the recorded schedule for this db);
                // wake conservatively on the next tick then — over-waking
                // is a no-op, under-waking would diverge from dense.
                let now = w.mdb.db.clock().now();
                w.next_wake = match w.plane.store.schedule(&w.mdb.db.name) {
                    Some(s) => s
                        .next_wake_tick(now, tick as u64, interval)
                        .unwrap_or(NEVER),
                    None => tick as u64 + 1,
                };
            }
        }
        // Circuit breaker on consecutive faulted ticks.
        if w.plane.faults.injected > injected_before {
            w.consecutive_faulted += 1;
        } else {
            w.consecutive_faulted = 0;
        }
        if self.config.quarantine_threshold > 0
            && w.consecutive_faulted >= self.config.quarantine_threshold
        {
            w.consecutive_faulted = 0;
            w.supervision.quarantines += 1;
            w.plane.metrics.inc("fleet.quarantines");
            w.quarantined_until = tick + 1 + self.config.quarantine_cooldown;
            w.plane.telemetry.emit(
                EventKind::TenantQuarantined,
                &w.mdb.db.name,
                format!("cool-down {} ticks", self.config.quarantine_cooldown),
                w.mdb.db.clock().now(),
            );
        }
        true
    }

    /// End-of-run accounting for one worker: the §8.2-flavor
    /// workload-impact roll-up plus the serialized outcome.
    fn finish_tenant(&self, w: TenantWorker) -> TenantResult {
        let TenantWorker {
            name,
            mut plane,
            mdb,
            run,
            supervision,
            t_start,
            mut sched,
            ..
        } = w;
        // Plan-selection cache counters land in the driver bookkeeping
        // registry, not the canonical one: cache-on and cache-off runs
        // must stay byte-identical in everything observable, and hit
        // counts differ between them by construction.
        let pcs = mdb.db.plan_cache_stats;
        sched.add("plan_cache.hits", pcs.hits);
        sched.add("plan_cache.misses", pcs.misses);
        sched.add("plan_cache.invalidations", pcs.invalidations);
        // Journal/recovery bookkeeping follows the same rule: compaction
        // changes journal geometry (bytes, checkpoint counts) without
        // changing canonical state, so its counters live in the driver
        // registry and surface through the §8.1 journal/recovery block.
        let (recoveries, truncated, reparked) = plane.store.recovery_stats();
        sched.add("journal.recoveries", recoveries);
        sched.add("journal.truncated_frames", truncated);
        sched.add("journal.reparked", reparked);
        let cs = plane.store.checkpoint_stats();
        sched.add("journal.checkpoints_written", cs.checkpoints_written);
        sched.add("journal.frames_compacted", cs.frames_compacted);
        sched.add("journal.bytes_reclaimed", cs.bytes_reclaimed);
        sched.add("journal.fallback_recoveries", cs.fallback_recoveries);
        sched.add("journal.corrupt_frames", cs.corrupt_frames);
        sched.add("journal.bytes", plane.store.journal_bytes() as u64);
        // Workload-impact roll-up (§8.2 flavor): fixed-count CPU cost of
        // the first observation window vs the last, per query. Counts
        // are pinned to the first window so the comparison measures
        // per-execution cost, not traffic shifts. Everything lands in
        // integer counters so fleet merging stays exact.
        let t_end = mdb.db.clock().now();
        let horizon = t_end.0.saturating_sub(t_start.0);
        let window = Duration::from_hours(24).millis().min(horizon / 2);
        if window > 0 {
            let qs = mdb.db.query_store();
            let mut measured = 0u64;
            let mut improved = 0u64;
            let mut cost_first = 0.0f64;
            let mut cost_last = 0.0f64;
            for (qid, _) in qs.known_queries() {
                let first = qs
                    .query_stats(qid, t_start, Timestamp(t_start.0 + window))
                    .cpu;
                let last = qs.query_stats(qid, Timestamp(t_end.0 - window), t_end).cpu;
                if first.count == 0 || last.count == 0 {
                    continue;
                }
                measured += 1;
                let mean_first = first.sum / first.count as f64;
                let mean_last = last.sum / last.count as f64;
                cost_first += first.count as f64 * mean_first;
                cost_last += first.count as f64 * mean_last;
                if mean_last > 0.0 && mean_first / mean_last >= 2.0 {
                    improved += 1;
                }
            }
            plane.metrics.add("workload.queries_measured", measured);
            plane.metrics.add("workload.queries_improved_2x", improved);
            if measured > 0 && cost_last <= 0.5 * cost_first {
                plane.metrics.inc("workload.dbs_cpu_halved");
            }
        }
        let outcome = TenantOutcome::collect(name, &plane, &mdb, &run, supervision);
        (outcome, plane.telemetry, plane.metrics, sched)
    }

    /// The per-tenant control loop used by the parallel pool (both
    /// modes) and the dense serial path: workload slice, then — when due
    /// — one control-plane pass, `ticks` times. All state is owned here;
    /// nothing is shared with other tenants.
    pub(crate) fn run_tenant(&self, index: usize, tenant: Tenant, ticks: u32) -> TenantResult {
        let mut w = self.worker(index, tenant);
        let sparse = self.config.scheduling == SchedulingMode::Sparse;
        for tick in 0..ticks {
            if w.done {
                break;
            }
            let control_due = !sparse || tick as u64 >= w.next_wake;
            self.step_tenant(&mut w, tick, control_due);
        }
        self.finish_tenant(w)
    }

    /// Sparse serial execution, tick-major: a [`WakeupHeap`] keyed
    /// `(due_tick, slice position)` pops exactly the tenants whose
    /// control pass is due this tick; everyone else gets only a workload
    /// slice. Equivalent to the per-tenant `tick >= next_wake` comparison
    /// the parallel pool uses (each tenant's decisions read only its own
    /// state), but a fleet step here does O(due) scheduling work instead
    /// of scanning every tenant's schedule. Heap keys are positions in
    /// the slice (dense, bounded by the slice length); the worker's
    /// global index seeds everything tenant-visible.
    fn run_serial_sparse(&self, fleet: Vec<(usize, Tenant)>, ticks: u32) -> Vec<TenantResult> {
        let mut workers: Vec<TenantWorker> =
            fleet.into_iter().map(|(i, t)| self.worker(i, t)).collect();
        let mut heap = WakeupHeap::new(workers.len());
        let mut due = vec![false; workers.len()];
        for tick in 0..ticks {
            for i in heap.pop_due(tick as u64) {
                due[i] = true;
            }
            for (pos, w) in workers.iter_mut().enumerate() {
                if w.done {
                    continue;
                }
                let claimed = due[pos];
                let executed = self.step_tenant(w, tick, claimed);
                // Re-arm on any executed pass, not just claimed ones: a
                // journal tear forces a pass the heap never scheduled,
                // and the recovered schedule supersedes the old entry
                // (which goes stale in the heap).
                if (claimed || executed) && !w.done {
                    // The pop released the tenant; re-arm it. A pass
                    // suppressed by quarantine resumes at the cool-down
                    // boundary — unless the schedule says later, or the
                    // tenant is parked for good.
                    let resume = w.next_wake.max(w.quarantined_until as u64);
                    if resume != NEVER {
                        heap.schedule(pos, resume);
                    }
                }
            }
            due.iter_mut().for_each(|d| *d = false);
        }
        workers.into_iter().map(|w| self.finish_tenant(w)).collect()
    }

    /// Work-stealing execution: tenants start in a global injector,
    /// each worker keeps a local deque, and idle workers steal — first
    /// a batch from the injector, then singles from peers. A skewed
    /// tenant therefore pins one worker while the rest drain everything
    /// else; results land in a per-tenant slot so assembly order is
    /// fleet order regardless of completion order.
    fn run_parallel(
        &self,
        fleet: Vec<(usize, Tenant)>,
        ticks: u32,
        threads: usize,
    ) -> Vec<TenantResult> {
        let n = fleet.len();
        let injector = Injector::new();
        for (pos, (index, tenant)) in fleet.into_iter().enumerate() {
            injector.push(TenantTask { pos, index, tenant });
        }
        let slots: Vec<Mutex<Option<TenantResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let workers: Vec<Worker<TenantTask>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<TenantTask>> = workers.iter().map(Worker::stealer).collect();

        crossbeam::thread::scope(|scope| {
            for (me, worker) in workers.into_iter().enumerate() {
                let injector = &injector;
                let stealers = &stealers;
                let slots = &slots;
                scope.spawn(move || loop {
                    let task = worker
                        .pop()
                        .or_else(|| injector.steal_batch_and_pop(&worker).success())
                        .or_else(|| {
                            stealers
                                .iter()
                                .enumerate()
                                .filter(|(other, _)| *other != me)
                                .find_map(|(_, s)| s.steal().success())
                        });
                    let Some(TenantTask { pos, index, tenant }) = task else {
                        // Injector and every deque drained: quiesce.
                        break;
                    };
                    let result = self.run_tenant(index, tenant, ticks);
                    *slots[pos].lock().unwrap() = Some(result);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("no poisoned slot")
                    .expect("every tenant was driven exactly once")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlmini::engine::ServiceTier;
    use workload::fleet::{generate_fleet, TierMix};

    fn small_policy() -> PlanePolicy {
        PlanePolicy {
            analysis_interval: Duration::from_hours(2),
            validation_min_wait: Duration::from_hours(1),
            ..PlanePolicy::default()
        }
    }

    fn tiny_fleet(n: usize, seed: u64) -> Vec<Tenant> {
        generate_fleet(
            n,
            TierMix {
                basic: 1.0,
                standard: 0.0,
                premium: 0.0,
            },
            seed,
        )
    }

    #[test]
    fn serial_run_produces_per_tenant_state() {
        let driver = FleetDriver::new(FleetDriverConfig {
            policy: small_policy(),
            ..FleetDriverConfig::default()
        });
        let report = driver.run(tiny_fleet(3, 11), 4, 1);
        assert_eq!(report.tenants.len(), 3);
        assert!(report.statements > 0);
        // Disjoint id blocks: each tenant's store started at its stride.
        assert_eq!(report.threads, 1);
        assert_eq!(report.ticks, 4);
    }

    #[test]
    fn parallel_matches_serial_byte_for_byte() {
        let driver = FleetDriver::new(FleetDriverConfig {
            policy: small_policy(),
            ..FleetDriverConfig::default()
        });
        let serial = driver.run(tiny_fleet(4, 77), 3, 1);
        let parallel = driver.run(tiny_fleet(4, 77), 3, 4);
        assert_eq!(serial.canonical_string(), parallel.canonical_string());
    }

    #[test]
    fn faults_are_seeded_per_tenant_not_per_thread() {
        let driver = FleetDriver::new(FleetDriverConfig {
            policy: small_policy(),
            fault_seed: Some(42),
            fault_transient_prob: 0.3,
            fault_fatal_prob: 0.05,
            ..FleetDriverConfig::default()
        });
        let serial = driver.run(tiny_fleet(4, 5), 3, 1);
        let parallel = driver.run(tiny_fleet(4, 5), 3, 3);
        assert_eq!(serial.canonical_string(), parallel.canonical_string());
    }

    #[test]
    fn cloned_fleets_replay_independently() {
        // Clones share SimClocks; the driver must detach them so a
        // fleet can be cloned, driven, and the original driven again
        // with byte-identical results (what every serial-vs-parallel
        // bench does).
        let driver = FleetDriver::new(FleetDriverConfig {
            policy: small_policy(),
            ..FleetDriverConfig::default()
        });
        let fleet = tiny_fleet(3, 21);
        let first = driver.run(fleet.clone(), 3, 2);
        let second = driver.run(fleet, 3, 2);
        assert_eq!(first.canonical_string(), second.canonical_string());
    }

    #[test]
    fn mixed_tiers_survive_the_driver() {
        let fleet = generate_fleet(
            4,
            TierMix {
                basic: 0.5,
                standard: 0.25,
                premium: 0.25,
            },
            9,
        );
        assert!(fleet.iter().any(|t| t.tier != ServiceTier::Basic));
        let driver = FleetDriver::new(FleetDriverConfig {
            policy: small_policy(),
            ..FleetDriverConfig::default()
        });
        let report = driver.run(fleet, 2, 2);
        assert_eq!(report.tenants.len(), 4);
    }

    #[test]
    fn sparse_matches_dense_byte_for_byte() {
        let dense = FleetDriver::new(FleetDriverConfig {
            policy: small_policy(),
            scheduling: SchedulingMode::Dense,
            ..FleetDriverConfig::default()
        });
        let sparse = FleetDriver::new(FleetDriverConfig {
            policy: small_policy(),
            scheduling: SchedulingMode::Sparse,
            ..FleetDriverConfig::default()
        });
        let a = dense.run(tiny_fleet(4, 31), 12, 1);
        let b = sparse.run(tiny_fleet(4, 31), 12, 1);
        assert_eq!(a.canonical_string(), b.canonical_string());
        assert_eq!(
            a.dashboard().render(),
            b.dashboard().render(),
            "mode-independent dashboards must match"
        );
        assert!(
            b.control_ticks_skipped() > 0,
            "a 2h-analysis fleet over 12 hourly ticks must skip some passes"
        );
        assert_eq!(
            b.control_ticks_executed() + b.control_ticks_skipped(),
            4 * 12,
            "every non-quarantined tick is either executed or skipped"
        );
    }

    #[test]
    fn sparse_serial_heap_matches_sparse_parallel() {
        let driver = FleetDriver::new(FleetDriverConfig {
            policy: small_policy(),
            scheduling: SchedulingMode::Sparse,
            fault_seed: Some(9),
            fault_transient_prob: 0.2,
            fault_fatal_prob: 0.02,
            quarantine_threshold: 2,
            quarantine_cooldown: 3,
            ..FleetDriverConfig::default()
        });
        let serial = driver.run(tiny_fleet(5, 13), 10, 1);
        let parallel = driver.run(tiny_fleet(5, 13), 10, 4);
        assert_eq!(serial.canonical_string(), parallel.canonical_string());
        assert_eq!(
            serial.control_ticks_executed(),
            parallel.control_ticks_executed(),
            "the heap and the per-tenant comparison pick the same ticks"
        );
    }
}
