//! Expiry stage: Active recommendations the user never acted on age out
//! after `reco_expiry` rather than lingering forever.

use super::NextDue;
use crate::plane::{ControlPlane, ManagedDb};
use crate::state::{RecoId, RecoState};
use crate::telemetry::EventKind;

pub(crate) fn run(plane: &mut ControlPlane, mdb: &mut ManagedDb) {
    let now = mdb.db.clock().now();
    let expiry = plane.policy.reco_expiry;
    let stale: Vec<RecoId> = plane
        .store
        .for_database(&mdb.db.name)
        .filter(|r| r.state == RecoState::Active && now.since(r.created_at) >= expiry)
        .map(|r| r.id)
        .collect();
    for id in stale {
        plane.store.update(id, |r| {
            r.transition(RecoState::Expired, now, "aged out")
                .expect("Active -> Expired");
        });
        plane
            .telemetry
            .emit(EventKind::RecommendationExpired, &mdb.db.name, "", now);
        plane.metrics.inc("reco.expired");
    }
}

/// Every Active recommendation expires at exactly `created_at +
/// reco_expiry`; the soonest such instant is the next due time.
pub(crate) fn due(plane: &ControlPlane, mdb: &ManagedDb) -> NextDue {
    let mut next = NextDue::Idle;
    for r in plane.store.for_database(&mdb.db.name) {
        if r.state != RecoState::Active {
            continue;
        }
        next = next.sooner(NextDue::At(
            r.created_at.saturating_add(plane.policy.reco_expiry),
        ));
    }
    next
}
