//! Retry stage: resume recommendations parked in Retry once their
//! backoff window has elapsed. Retrying on the very next pass is a
//! retry storm at fleet scale; the [`crate::plane::RetryPolicy`] spaces
//! attempts geometrically with deterministic jitter on simulated time.

use super::NextDue;
use crate::plane::{ControlPlane, ManagedDb};
use crate::state::{RecoId, RecoState, RecoSubState, RetryPhase};
use sqlmini::clock::Timestamp;

/// Parked retries for one database: (id, phase, attempts, entered-at).
/// The Retry entry instant is the last transition; a reco never
/// transitions while sitting in Retry.
fn parked(plane: &ControlPlane, db_name: &str) -> Vec<(RecoId, RetryPhase, u32, Timestamp)> {
    plane
        .store
        .for_database(db_name)
        .filter(|r| r.state == RecoState::Retry)
        .filter_map(|r| match &r.substate {
            RecoSubState::RetryOf { phase, attempts } => {
                let entered = r.history.last().map(|t| t.at).unwrap_or(r.created_at);
                Some((r.id, *phase, *attempts, entered))
            }
            _ => None,
        })
        .collect()
}

pub(crate) fn run(plane: &mut ControlPlane, mdb: &mut ManagedDb) {
    let now = mdb.db.clock().now();
    for (id, phase, attempts, entered) in parked(plane, &mdb.db.name) {
        if !plane.policy.retry.eligible(id, attempts, entered, now) {
            // Still inside the backoff window; the park-time
            // RetryBackoffWait event already recorded the wait.
            continue;
        }
        plane.metrics.inc("retry.resumed");
        plane.metrics.observe_time(
            "retry.delay_ms",
            plane.policy.retry.delay(id, attempts).millis(),
        );
        match phase {
            RetryPhase::Implement => {
                // Re-enter the implementation path.
                super::implement::implement_one(plane, mdb, id);
            }
            RetryPhase::Validate => {
                plane.store.update(id, |r| {
                    r.transition(RecoState::Validating, now, "retrying validation")
                        .expect("Retry -> Validating");
                });
            }
            RetryPhase::Revert => {
                plane.store.update(id, |r| {
                    r.transition(RecoState::Reverting, now, "retrying revert")
                        .expect("Retry -> Reverting");
                });
                super::revert::revert_one(plane, mdb, id);
            }
        }
    }
}

/// Each parked reco becomes eligible exactly when its (deterministic,
/// jittered) backoff delay has elapsed since it entered Retry.
pub(crate) fn due(plane: &ControlPlane, mdb: &ManagedDb) -> NextDue {
    let mut next = NextDue::Idle;
    for (id, _phase, attempts, entered) in parked(plane, &mdb.db.name) {
        let delay = plane.policy.retry.delay(id, attempts);
        next = next.sooner(NextDue::At(entered.saturating_add(delay)));
    }
    next
}
