//! Implementation stage (§4's Implementation micro-service): apply
//! Active recommendations when the user's settings allow, preferring
//! low-activity windows, with fault-aware retry.

use super::NextDue;
use crate::faults::{FaultKind, FaultPoint};
use crate::plane::{action_kind, ControlPlane, ManagedDb};
use crate::scheduler::is_low_activity;
use crate::state::{RecoId, RecoState, RecoSubState, RetryPhase};
use crate::telemetry::EventKind;
use autoindex::RecoAction;
use sqlmini::clock::Timestamp;

pub(crate) fn run(plane: &mut ControlPlane, mdb: &mut ManagedDb) {
    let now = mdb.db.clock().now();
    let (auto_create, auto_drop) = plane.effective_settings(mdb);
    if plane.policy.schedule_builds && !is_low_activity(&mdb.db, &plane.policy.scheduler, now) {
        return;
    }
    let due: Vec<RecoId> = plane
        .store
        .for_database(&mdb.db.name)
        .filter(|r| r.state == RecoState::Active)
        .filter(|r| match &r.recommendation.action {
            RecoAction::CreateIndex { .. } => auto_create,
            RecoAction::DropIndex { .. } => auto_drop,
        })
        .map(|r| r.id)
        .collect();
    for id in due {
        implement_one(plane, mdb, id);
    }
}

/// Implementable backlog exists ⇒ poll every tick: even with builds
/// unscheduled this is the tick after creation, and with
/// `schedule_builds` the low-activity window is a time-varying signal
/// the store cannot predict.
pub(crate) fn due(plane: &ControlPlane, mdb: &ManagedDb) -> NextDue {
    let (auto_create, auto_drop) = plane.effective_settings(mdb);
    let pending = plane
        .store
        .for_database(&mdb.db.name)
        .filter(|r| r.state == RecoState::Active)
        .any(|r| match &r.recommendation.action {
            RecoAction::CreateIndex { .. } => auto_create,
            RecoAction::DropIndex { .. } => auto_drop,
        });
    if pending {
        NextDue::NextTick
    } else {
        NextDue::Idle
    }
}

pub(crate) fn implement_one(plane: &mut ControlPlane, mdb: &mut ManagedDb, id: RecoId) -> bool {
    let now = mdb.db.clock().now();
    let action = match plane.store.get(id) {
        Some(r) => r.recommendation.action.clone(),
        None => return false,
    };
    plane.store.update(id, |r| {
        r.transition(RecoState::Implementing, now, "implementation started")
            .expect("Active/Retry -> Implementing");
    });
    plane
        .telemetry
        .emit(EventKind::ImplementStarted, &mdb.db.name, "", now);
    plane.metrics.inc("implement.started");

    let fault_point = match &action {
        RecoAction::CreateIndex { .. } => FaultPoint::IndexBuild,
        RecoAction::DropIndex { .. } => FaultPoint::IndexDrop,
    };
    if let Some(kind) = plane.faults.check(fault_point) {
        return handle_fault(plane, mdb, id, RetryPhase::Implement, kind, now);
    }

    let result: Result<(), String> = match &action {
        RecoAction::CreateIndex { def } => match mdb.db.create_index(def.clone()) {
            Ok((ix_id, _report)) => {
                plane.store.update(id, |r| {
                    r.implemented_index = Some(ix_id);
                });
                Ok(())
            }
            Err(e) => Err(e.to_string()),
        },
        RecoAction::DropIndex { index, .. } => match mdb.db.drop_index(*index) {
            Ok(def) => {
                plane.store.update(id, |r| {
                    r.dropped_def = Some(def);
                });
                Ok(())
            }
            Err(e) => Err(e.to_string()),
        },
    };

    match result {
        Ok(()) => {
            plane.store.update(id, |r| {
                r.implemented_at = Some(now);
                r.transition(RecoState::Validating, now, "implemented")
                    .expect("Implementing -> Validating");
            });
            plane
                .telemetry
                .emit(EventKind::ImplementSucceeded, &mdb.db.name, "", now);
            plane
                .metrics
                .inc(&format!("implement.succeeded.{}", action_kind(&action)));
            plane
                .telemetry
                .emit(EventKind::ValidationStarted, &mdb.db.name, "", now);
            true
        }
        Err(e) => {
            // Engine-level failures (duplicate name, missing table)
            // are irrecoverable: the paper's Error terminal state.
            plane.store.update(id, |r| {
                r.transition(RecoState::Error, now, e.clone())
                    .expect("Implementing -> Error");
                r.substate = RecoSubState::ErrorDetail(e.clone());
            });
            plane
                .telemetry
                .emit(EventKind::ImplementFailedFatal, &mdb.db.name, e, now);
            plane.metrics.inc("implement.failed.fatal");
            false
        }
    }
}

pub(crate) fn handle_fault(
    plane: &mut ControlPlane,
    mdb: &ManagedDb,
    id: RecoId,
    phase: RetryPhase,
    kind: FaultKind,
    now: Timestamp,
) -> bool {
    match kind {
        FaultKind::Transient => {
            let attempts = plane
                .store
                .update(id, |r| r.enter_retry(phase, now, "transient fault"))
                .and_then(Result::ok)
                .unwrap_or(0);
            plane.telemetry.emit(
                EventKind::ImplementFailedTransient,
                &mdb.db.name,
                format!("attempt {attempts}"),
                now,
            );
            plane.metrics.inc("implement.failed.transient");
            if attempts > plane.policy.max_retry_attempts {
                plane.store.update(id, |r| {
                    r.transition(RecoState::Error, now, "retry budget exhausted")
                        .expect("Retry -> Error");
                });
                plane.metrics.inc("retry.exhausted");
                plane.incident(&mdb.db.name, format!("{id}: retries exhausted"), now);
            } else {
                park_backoff(plane, &mdb.db.name, attempts, now);
            }
            false
        }
        FaultKind::Fatal => {
            plane.store.update(id, |r| {
                r.transition(RecoState::Error, now, "fatal fault")
                    .expect("-> Error");
            });
            plane
                .telemetry
                .emit(EventKind::ImplementFailedFatal, &mdb.db.name, "fault", now);
            plane.metrics.inc("implement.failed.fatal");
            plane.incident(&mdb.db.name, format!("{id}: fatal fault"), now);
            false
        }
    }
}

/// Record the backoff wait once, at park time. The retry stage no
/// longer re-announces the wait on every pass over an ineligible reco —
/// an event-driven scheduler has no pass to announce it from.
pub(crate) fn park_backoff(plane: &mut ControlPlane, db_name: &str, attempts: u32, now: Timestamp) {
    plane.telemetry.emit(
        EventKind::RetryBackoffWait,
        db_name,
        format!("attempt {attempts}"),
        now,
    );
    plane.metrics.inc("retry.backoff_wait");
}
