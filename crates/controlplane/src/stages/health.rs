//! Health stage (§4's Health micro-service): detect stuck
//! recommendations and raise incidents, taking automated corrective
//! action where safe.

use super::NextDue;
use crate::plane::{ControlPlane, ManagedDb};
use crate::state::RecoState;
use sqlmini::clock::{Duration, Timestamp};

pub(crate) fn run(plane: &mut ControlPlane, mdb: &mut ManagedDb) {
    let now = mdb.db.clock().now();
    let horizon = Timestamp(
        now.millis()
            .saturating_sub(plane.policy.stuck_horizon.millis()),
    );
    for id in plane.store.stuck_since(horizon) {
        let Some(r) = plane.store.get(id) else {
            continue;
        };
        if r.database != mdb.db.name {
            continue;
        }
        // Active recommendations awaiting the user are not stuck; the
        // expiry path ages them out without paging anyone.
        if r.state == RecoState::Active {
            continue;
        }
        let state = r.state;
        plane.incident(&mdb.db.name, format!("{id} stuck in {state:?}"), now);
        plane.metrics.inc("health.stuck_closed");
        // Automated corrective action where safe: park in a terminal
        // state so the pipeline doesn't wedge.
        plane.store.update(id, |r| {
            let target = if r.state == RecoState::Active {
                RecoState::Expired
            } else {
                RecoState::Error
            };
            let _ = r.transition(target, now, "auto-closed by health check");
        });
    }
}

/// A non-terminal, non-Active reco becomes "stuck" the millisecond its
/// last transition falls strictly before `now - stuck_horizon`
/// (mirroring `StateStore::stuck_since`), i.e. at `last + horizon + 1`.
pub(crate) fn due(plane: &ControlPlane, mdb: &ManagedDb) -> NextDue {
    let mut next = NextDue::Idle;
    for r in plane.store.for_database(&mdb.db.name) {
        if r.state.is_terminal() || r.state == RecoState::Active {
            continue;
        }
        let last = r.history.last().map(|t| t.at).unwrap_or(r.created_at);
        next = next.sooner(NextDue::At(
            last.saturating_add(plane.policy.stuck_horizon)
                .saturating_add(Duration::from_millis(1)),
        ));
    }
    next
}
