//! Revert: undo an implemented recommendation (auto-revert after a
//! validation regression, or a retried revert). Not a pipeline stage of
//! its own — reached from the validate and retry stages — but kept as a
//! unit beside them since both call into it.

use crate::faults::{FaultKind, FaultPoint};
use crate::plane::{action_kind, ControlPlane, ManagedDb};
use crate::state::{RecoId, RecoState, RetryPhase};
use crate::telemetry::EventKind;
use autoindex::RecoAction;

pub(crate) fn revert_one(plane: &mut ControlPlane, mdb: &mut ManagedDb, id: RecoId) {
    let now = mdb.db.clock().now();
    let Some(r) = plane.store.get(id) else { return };
    let action = r.recommendation.action.clone();
    let source = r.recommendation.source;
    let implemented_index = r.implemented_index;
    let dropped_def = r.dropped_def.clone();
    plane.tracer.start("revert", now);
    plane.tracer.attr("action", action_kind(&action));

    if let Some(kind) = plane.faults.check(FaultPoint::IndexDrop) {
        match kind {
            FaultKind::Transient => {
                let attempts = plane
                    .store
                    .update(id, |r| {
                        r.enter_retry(RetryPhase::Revert, now, "revert fault")
                    })
                    .and_then(Result::ok)
                    .unwrap_or(0);
                plane
                    .telemetry
                    .emit(EventKind::RevertFailedTransient, &mdb.db.name, "", now);
                plane.metrics.inc("revert.failed.transient");
                if attempts > plane.policy.max_retry_attempts {
                    plane.store.update(id, |r| {
                        r.transition(RecoState::Error, now, "revert retries exhausted")
                            .expect("Retry -> Error");
                    });
                    plane.metrics.inc("retry.exhausted");
                    plane.incident(&mdb.db.name, format!("{id}: revert retries exhausted"), now);
                } else {
                    super::implement::park_backoff(plane, &mdb.db.name, attempts, now);
                }
            }
            FaultKind::Fatal => {
                plane.store.update(id, |r| {
                    r.transition(RecoState::Error, now, "revert fatal")
                        .expect("Reverting -> Error");
                });
                plane.metrics.inc("revert.failed.fatal");
                plane.incident(&mdb.db.name, format!("{id}: revert fatal"), now);
            }
        }
        plane.tracer.attr("outcome", "faulted");
        plane.tracer.end(mdb.db.clock().now());
        return;
    }

    let ok = match (&action, implemented_index, dropped_def) {
        (RecoAction::CreateIndex { .. }, Some(ix), _) => mdb.db.drop_index(ix).is_ok(),
        (RecoAction::DropIndex { .. }, _, Some(def)) => mdb.db.create_index(def).is_ok(),
        _ => false,
    };
    if ok {
        plane.store.update(id, |r| {
            r.transition(RecoState::Reverted, now, "reverted")
                .expect("Reverting -> Reverted");
        });
        plane
            .telemetry
            .emit(EventKind::RevertSucceeded, &mdb.db.name, "", now);
        plane.metrics.inc("revert.succeeded");
        plane
            .metrics
            .inc(&format!("revert.action.{}", action_kind(&action)));
        plane.metrics.inc(&format!("revert.source.{source:?}"));
        plane.tracer.attr("outcome", "reverted");
    } else {
        // Index already gone / recreated externally: §4's well-known
        // error class, processed automatically.
        plane.store.update(id, |r| {
            r.transition(RecoState::Error, now, "revert target missing")
                .expect("Reverting -> Error");
        });
        plane.metrics.inc("revert.target_missing");
        plane.tracer.attr("outcome", "target_missing");
    }
    plane.tracer.end(mdb.db.clock().now());
}
