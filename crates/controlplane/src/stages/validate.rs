//! Validation stage (§4's Validation micro-service): once enough
//! post-change statistics accumulated, run the statistical validator and
//! either confirm (Success) or auto-revert (Reverting → Reverted);
//! validation outcomes also train the MI classifier online (§5.2).

use super::NextDue;
use crate::faults::{FaultKind, FaultPoint};
use crate::plane::{ControlPlane, ManagedDb};
use crate::state::{RecoId, RecoState, RecoSubState, RetryPhase};
use crate::telemetry::EventKind;
use autoindex::classifier::TrainingExample;
use autoindex::validator::{validate, ChangeKind, Verdict};
use autoindex::{CandidateFeatures, RecoAction, RecoSource};
use sqlmini::clock::Timestamp;

pub(crate) fn run(plane: &mut ControlPlane, mdb: &mut ManagedDb) {
    let now = mdb.db.clock().now();
    let due: Vec<(RecoId, Timestamp)> = plane
        .store
        .for_database(&mdb.db.name)
        .filter(|r| r.state == RecoState::Validating)
        .filter_map(|r| r.implemented_at.map(|t| (r.id, t)))
        .collect();
    for (id, implemented_at) in due {
        let waited = now.since(implemented_at);
        if waited < plane.policy.validation_min_wait {
            continue;
        }
        if let Some(kind) = plane.faults.check(FaultPoint::ValidationRead) {
            match kind {
                FaultKind::Transient => {
                    let attempts = plane
                        .store
                        .update(id, |r| {
                            r.enter_retry(RetryPhase::Validate, now, "stats unavailable")
                        })
                        .and_then(Result::ok)
                        .unwrap_or(0);
                    plane.metrics.inc("validate.failed.transient");
                    if attempts > plane.policy.max_retry_attempts {
                        plane.store.update(id, |r| {
                            r.transition(RecoState::Error, now, "validation retries exhausted")
                                .expect("Retry -> Error");
                        });
                        plane.metrics.inc("retry.exhausted");
                        plane.incident(
                            &mdb.db.name,
                            format!("{id}: validation retries exhausted"),
                            now,
                        );
                    } else {
                        super::implement::park_backoff(plane, &mdb.db.name, attempts, now);
                    }
                }
                FaultKind::Fatal => {
                    plane.store.update(id, |r| {
                        r.transition(RecoState::Error, now, "validation fatal")
                            .expect("Validating -> Error");
                    });
                    plane.metrics.inc("validate.failed.fatal");
                }
            }
            continue;
        }

        let (index_name, kind) = match plane.store.get(id) {
            Some(r) => match &r.recommendation.action {
                RecoAction::CreateIndex { def } => (def.name.clone(), ChangeKind::Created),
                RecoAction::DropIndex { name, .. } => (name.clone(), ChangeKind::Dropped),
            },
            None => continue,
        };
        let before = (
            Timestamp(
                implemented_at
                    .millis()
                    .saturating_sub(plane.policy.validation_before_window.millis()),
            ),
            implemented_at,
        );
        let after = (implemented_at, now);
        let outcome = validate(
            &mdb.db,
            &index_name,
            kind,
            before,
            after,
            &plane.policy.validator,
        );

        match outcome.verdict {
            Verdict::NoData => {
                if waited >= plane.policy.validation_max_wait {
                    finish_validation(plane, id, "no qualifying data", now);
                    plane
                        .telemetry
                        .emit(EventKind::ValidationNoData, &mdb.db.name, "", now);
                    plane.metrics.inc("validate.nodata");
                    plane
                        .metrics
                        .observe_time("validation.wait_ms", waited.millis());
                }
                // else: keep waiting.
            }
            Verdict::Improved => {
                train_classifier(plane, mdb, id, true);
                finish_validation(plane, id, "improved", now);
                plane.telemetry.emit(
                    EventKind::ValidationImproved,
                    &mdb.db.name,
                    format!("{:.0}%", -outcome.aggregate_cpu_change * 100.0),
                    now,
                );
                plane.metrics.inc("validate.improved");
                plane
                    .metrics
                    .observe_time("validation.wait_ms", waited.millis());
            }
            Verdict::Inconclusive => {
                if waited >= plane.policy.validation_max_wait {
                    train_classifier(plane, mdb, id, false);
                    finish_validation(plane, id, "inconclusive", now);
                    plane
                        .telemetry
                        .emit(EventKind::ValidationInconclusive, &mdb.db.name, "", now);
                    plane.metrics.inc("validate.inconclusive");
                    plane
                        .metrics
                        .observe_time("validation.wait_ms", waited.millis());
                }
            }
            Verdict::Regressed => {
                train_classifier(plane, mdb, id, false);
                plane.store.update(id, |r| {
                    r.transition(RecoState::Reverting, now, "regression detected")
                        .expect("Validating -> Reverting");
                    r.substate = RecoSubState::ValidationDetail(format!(
                        "aggregate cpu change {:+.0}%",
                        outcome.aggregate_cpu_change * 100.0
                    ));
                });
                plane.telemetry.emit(
                    EventKind::ValidationRegressed,
                    &mdb.db.name,
                    format!("{:+.0}%", outcome.aggregate_cpu_change * 100.0),
                    now,
                );
                plane.metrics.inc("validate.regressed");
                plane
                    .metrics
                    .observe_time("validation.wait_ms", waited.millis());
                plane
                    .telemetry
                    .emit(EventKind::RevertStarted, &mdb.db.name, "", now);
                plane.metrics.inc("revert.cause.validation_regression");
                super::revert::revert_one(plane, mdb, id);
            }
        }
    }
}

/// Before `implemented_at + validation_min_wait` nothing can happen and
/// the exact instant is known; past it, the validator's verdict depends
/// on what statistics the workload accumulates, so the stage polls.
pub(crate) fn due(plane: &ControlPlane, mdb: &ManagedDb) -> NextDue {
    let now = mdb.db.clock().now();
    let mut next = NextDue::Idle;
    for r in plane.store.for_database(&mdb.db.name) {
        if r.state != RecoState::Validating {
            continue;
        }
        let Some(implemented_at) = r.implemented_at else {
            continue;
        };
        let ready = implemented_at.saturating_add(plane.policy.validation_min_wait);
        next = next.sooner(if now < ready {
            NextDue::At(ready)
        } else {
            NextDue::NextTick
        });
    }
    next
}

fn finish_validation(plane: &mut ControlPlane, id: RecoId, note: &str, now: Timestamp) {
    plane.store.update(id, |r| {
        r.transition(RecoState::Success, now, note)
            .expect("Validating -> Success");
    });
}

/// Feed a validation outcome back into the MI classifier (§5.2: "we use
/// data from previous index validations ... to train a classifier").
fn train_classifier(plane: &mut ControlPlane, mdb: &ManagedDb, id: RecoId, improved: bool) {
    let Some(r) = plane.store.get(id) else { return };
    if r.recommendation.source != RecoSource::MissingIndex {
        return;
    }
    let RecoAction::CreateIndex { def } = &r.recommendation.action else {
        return;
    };
    let rows = mdb.db.table_rows(def.table) as f64;
    let ex = TrainingExample {
        features: CandidateFeatures {
            est_impact_pct: r.recommendation.estimated_improvement * 100.0,
            log_table_rows: rows.max(1.0).log10(),
            log_index_size: (r.recommendation.estimated_size_bytes as f64)
                .max(1.0)
                .log10(),
            log_demand: (1.0 + r.recommendation.impacted_queries.len() as f64).log10(),
            n_key_columns: def.key_columns.len() as f64,
        },
        improved,
    };
    plane.classifier.train_one(&ex, 0.05);
}
