//! Analysis stage (§4's Analysis micro-service): invoke the recommender
//! (MI or DTA per the tier policy) plus the drop analyzer, and register
//! new recommendations.

use super::NextDue;
use crate::faults::FaultPoint;
use crate::plane::{action_kind, ControlPlane, ManagedDb, RecommenderPolicy};
use crate::scheduler::is_low_activity;
use crate::telemetry::EventKind;
use autoindex::drops::recommend_drops;
use autoindex::dta::tune;
use autoindex::mi::recommend as mi_recommend;
use autoindex::Recommendation;
use sqlmini::engine::ServiceTier;

pub(crate) fn run(plane: &mut ControlPlane, mdb: &mut ManagedDb) {
    let now = mdb.db.clock().now();
    if let Some(last) = mdb.last_analysis {
        if now.since(last) < plane.policy.analysis_interval {
            return;
        }
    }
    mdb.last_analysis = Some(now);
    // MI snapshots fold into a reset-tolerant cumulative series, so one
    // snapshot per analysis pass gives the slope test the resolution it
    // needs while keeping off-cadence ticks entirely free of work.
    mdb.mi_store.take_snapshot(&mdb.db);
    plane
        .telemetry
        .emit(EventKind::AnalysisStarted, &mdb.db.name, "", now);

    let use_dta = match plane.policy.recommender {
        RecommenderPolicy::MiOnly => false,
        RecommenderPolicy::DtaOnly => true,
        RecommenderPolicy::ByTier => mdb.db.config.tier == ServiceTier::Premium,
    };
    // Interference avoidance: a DTA session competes with the customer's
    // workload for the primary's resources, so it can be restricted to
    // low-activity windows. MI analysis is DMV-snapshot arithmetic and
    // is always safe.
    let use_dta = use_dta
        && (!plane.policy.dta_low_activity_only
            || is_low_activity(&mdb.db, &plane.policy.scheduler, now));

    let mut new_recos: Vec<Recommendation> = Vec::new();
    if use_dta {
        if let Some(kind) = plane.faults.check(FaultPoint::DtaSession) {
            plane.telemetry.emit(
                EventKind::DtaSessionAborted,
                &mdb.db.name,
                format!("{kind:?}"),
                now,
            );
        } else {
            let report = tune(&mut mdb.db, &plane.policy.dta);
            plane.metrics.inc("dta.sessions");
            plane
                .metrics
                .add("dta.whatif.issued", report.what_if.issued);
            plane
                .metrics
                .add("dta.whatif.saved.cache", report.what_if.saved_cache);
            plane
                .metrics
                .add("dta.whatif.saved.pruning", report.what_if.saved_pruning);
            if report.aborted {
                plane.metrics.inc("dta.sessions.aborted");
                plane
                    .telemetry
                    .emit(EventKind::DtaSessionAborted, &mdb.db.name, "budget", now);
            }
            new_recos.extend(report.recommendations);
        }
    } else {
        let analysis = mi_recommend(&mdb.db, &mdb.mi_store, &plane.policy.mi, &plane.classifier);
        new_recos.extend(analysis.recommendations);
    }

    // Drop analysis runs for everyone.
    for p in recommend_drops(&mdb.db, &plane.policy.drops, mdb.observed_since) {
        new_recos.push(p.recommendation);
    }

    for reco in new_recos {
        if plane.is_duplicate_reco(&mdb.db.name, &reco) {
            continue;
        }
        plane
            .metrics
            .inc(&format!("reco.created.{}", action_kind(&reco.action)));
        plane
            .metrics
            .inc(&format!("reco.created.source.{:?}", reco.source));
        plane.store.insert(&mdb.db.name, reco, now);
        plane
            .telemetry
            .emit(EventKind::RecommendationCreated, &mdb.db.name, "", now);
    }
    plane
        .telemetry
        .emit(EventKind::AnalysisCompleted, &mdb.db.name, "", now);
}

/// Analysis runs on a pure cadence: the next pass is due exactly one
/// interval after the last, independent of what it will find.
pub(crate) fn due(plane: &ControlPlane, mdb: &ManagedDb) -> NextDue {
    match mdb.last_analysis {
        // Never analyzed — due immediately (the first tick always runs
        // analysis, so this is only reachable before tick one).
        None => NextDue::NextTick,
        Some(last) => NextDue::At(last.saturating_add(plane.policy.analysis_interval)),
    }
}
