//! The tick pipeline as explicit stage units.
//!
//! §4's micro-services used to be private methods on a 1.3k-line
//! `ControlPlane`; here each phase is its own module with two entry
//! points:
//!
//! * `run(plane, mdb)` — execute the phase once (exactly the old tick
//!   body);
//! * `due(plane, mdb)` — report, from current state alone, when the
//!   phase next has work ([`NextDue`]).
//!
//! The [`WakeSchedule`] computed from the `due` answers at the end of a
//! tick is what lets the fleet driver skip idle tenants: a tenant whose
//! schedule is entirely in the future is not ticked at all until the
//! soonest due instant. Correctness of sparse scheduling rests on two
//! invariants the stage implementations maintain:
//!
//! 1. **No-op ticks are free.** On a dense tick where no stage has due
//!    work, the pipeline changes no state, emits no telemetry or
//!    metrics, and draws no fault RNG (armed fault points are only
//!    consulted once a recommendation is actually due). Skipping such a
//!    tick is therefore unobservable.
//! 2. **Every behavior flip is a due instant.** Anything time-driven —
//!    analysis cadence, retry backoff expiry, validation windows, reco
//!    expiry, the stuck horizon — maps to an `At(t)` no later than the
//!    flip, and anything driven by signals outside the store (workload
//!    activity, validator data accumulation) maps to `NextTick`.
//!
//! Over-waking is harmless (the dense oracle runs every stage every tick
//! and must no-op); under-waking is the only bug class, which is why
//! `NextTick` is the conservative fallback.

pub mod expire;
pub mod health;
pub mod implement;
pub mod recommend;
pub mod retry;
pub mod revert;
pub mod validate;

use crate::plane::{ControlPlane, ManagedDb};
use sqlmini::clock::{Duration, Timestamp};

/// The six tick phases, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    Recommend,
    Retry,
    Implement,
    Validate,
    Expire,
    Health,
}

impl Stage {
    /// Pipeline order. Also the span-name order the trace tests pin.
    pub const ALL: [Stage; 6] = [
        Stage::Recommend,
        Stage::Retry,
        Stage::Implement,
        Stage::Validate,
        Stage::Expire,
        Stage::Health,
    ];

    /// Stable span / phase name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Recommend => "recommend",
            Stage::Retry => "retry",
            Stage::Implement => "implement",
            Stage::Validate => "validate",
            Stage::Expire => "expire",
            Stage::Health => "health",
        }
    }

    /// Execute this stage once against one managed database.
    pub fn run(self, plane: &mut ControlPlane, mdb: &mut ManagedDb) {
        match self {
            Stage::Recommend => recommend::run(plane, mdb),
            Stage::Retry => retry::run(plane, mdb),
            Stage::Implement => implement::run(plane, mdb),
            Stage::Validate => validate::run(plane, mdb),
            Stage::Expire => expire::run(plane, mdb),
            Stage::Health => health::run(plane, mdb),
        }
    }

    /// When this stage next has work, judged from current state.
    pub fn due(self, plane: &ControlPlane, mdb: &ManagedDb) -> NextDue {
        match self {
            Stage::Recommend => recommend::due(plane, mdb),
            Stage::Retry => retry::due(plane, mdb),
            Stage::Implement => implement::due(plane, mdb),
            Stage::Validate => validate::due(plane, mdb),
            Stage::Expire => expire::due(plane, mdb),
            Stage::Health => health::due(plane, mdb),
        }
    }
}

/// When a stage next needs to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NextDue {
    /// No pending work and nothing that could become due on its own:
    /// only a state change from another stage (or a user action) can
    /// create work for this stage.
    Idle,
    /// Work becomes due at this instant (absolute simulated time).
    At(Timestamp),
    /// Must be re-polled every tick: the stage is gated on a signal the
    /// store cannot see coming (workload activity windows, validator
    /// data accumulation).
    NextTick,
}

impl NextDue {
    /// Min-combine: the sooner of two wake requirements.
    pub fn sooner(self, other: NextDue) -> NextDue {
        match (self, other) {
            (NextDue::NextTick, _) | (_, NextDue::NextTick) => NextDue::NextTick,
            (NextDue::Idle, o) => o,
            (s, NextDue::Idle) => s,
            (NextDue::At(a), NextDue::At(b)) => NextDue::At(a.min(b)),
        }
    }
}

/// Per-database wake schedule: each stage's next-due answer, computed at
/// the end of a tick from final state. Journaled by the store (so crash
/// recovery reconstructs it) and consumed by the fleet driver's wakeup
/// heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WakeSchedule {
    pub recommend: NextDue,
    pub retry: NextDue,
    pub implement: NextDue,
    pub validate: NextDue,
    pub expire: NextDue,
    pub health: NextDue,
}

impl WakeSchedule {
    pub fn compute(plane: &ControlPlane, mdb: &ManagedDb) -> WakeSchedule {
        WakeSchedule {
            recommend: Stage::Recommend.due(plane, mdb),
            retry: Stage::Retry.due(plane, mdb),
            implement: Stage::Implement.due(plane, mdb),
            validate: Stage::Validate.due(plane, mdb),
            expire: Stage::Expire.due(plane, mdb),
            health: Stage::Health.due(plane, mdb),
        }
    }

    /// The maximally conservative schedule: every stage re-polled next
    /// tick. Crash recovery journals this over a schedule invalidated by
    /// a re-park — over-waking is harmless (invariant above), while a
    /// stale `At` could sleep through the retry it just created.
    pub fn immediate() -> WakeSchedule {
        WakeSchedule {
            recommend: NextDue::NextTick,
            retry: NextDue::NextTick,
            implement: NextDue::NextTick,
            validate: NextDue::NextTick,
            expire: NextDue::NextTick,
            health: NextDue::NextTick,
        }
    }

    /// Stage dues in pipeline order (parallel to [`Stage::ALL`]).
    pub fn stages(&self) -> [NextDue; 6] {
        [
            self.recommend,
            self.retry,
            self.implement,
            self.validate,
            self.expire,
            self.health,
        ]
    }

    /// The soonest wake requirement across all stages.
    pub fn soonest(&self) -> NextDue {
        self.stages()
            .into_iter()
            .fold(NextDue::Idle, NextDue::sooner)
    }

    /// First tick index strictly after `tick` at which the plane must
    /// run again, given the tick cadence. `now` is the simulated time of
    /// tick `tick`; tick `tick + k` happens at `now + k × tick_interval`.
    /// `None` means no stage can ever become due without an external
    /// state change — the tenant may sleep forever.
    pub fn next_wake_tick(
        &self,
        now: Timestamp,
        tick: u64,
        tick_interval: Duration,
    ) -> Option<u64> {
        match self.soonest() {
            NextDue::Idle => None,
            NextDue::NextTick => Some(tick.saturating_add(1)),
            NextDue::At(due) => {
                if due <= now {
                    return Some(tick.saturating_add(1));
                }
                let gap = due.millis() - now.millis();
                let step = tick_interval.millis().max(1);
                // Ceiling division without the `gap + step - 1` overflow
                // near u64::MAX.
                let k = (gap / step + u64::from(!gap.is_multiple_of(step))).max(1);
                Some(tick.saturating_add(k))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sooner_prefers_next_tick_then_earliest_instant() {
        let a = NextDue::At(Timestamp(5));
        let b = NextDue::At(Timestamp(9));
        assert_eq!(a.sooner(b), a);
        assert_eq!(b.sooner(a), a);
        assert_eq!(NextDue::Idle.sooner(a), a);
        assert_eq!(a.sooner(NextDue::Idle), a);
        assert_eq!(NextDue::Idle.sooner(NextDue::Idle), NextDue::Idle);
        assert_eq!(a.sooner(NextDue::NextTick), NextDue::NextTick);
        assert_eq!(NextDue::NextTick.sooner(NextDue::Idle), NextDue::NextTick);
    }

    fn all_idle() -> WakeSchedule {
        WakeSchedule {
            recommend: NextDue::Idle,
            retry: NextDue::Idle,
            implement: NextDue::Idle,
            validate: NextDue::Idle,
            expire: NextDue::Idle,
            health: NextDue::Idle,
        }
    }

    #[test]
    fn next_wake_tick_maps_instants_onto_the_tick_grid() {
        let hour = Duration::from_hours(1);
        let now = Timestamp(Duration::from_hours(10).millis());
        let mut s = all_idle();
        assert_eq!(s.next_wake_tick(now, 9, hour), None, "all idle sleeps");

        s.retry = NextDue::NextTick;
        assert_eq!(s.next_wake_tick(now, 9, hour), Some(10));

        // An instant in the past (or right now) wakes on the next tick.
        s.retry = NextDue::At(now);
        assert_eq!(s.next_wake_tick(now, 9, hour), Some(10));
        s.retry = NextDue::At(Timestamp::EPOCH);
        assert_eq!(s.next_wake_tick(now, 9, hour), Some(10));

        // One millisecond into the future still needs the next tick.
        s.retry = NextDue::At(Timestamp(now.millis() + 1));
        assert_eq!(s.next_wake_tick(now, 9, hour), Some(10));

        // Exactly on a tick boundary lands on that tick, not one later.
        s.retry = NextDue::At(now.saturating_add(Duration::from_hours(3)));
        assert_eq!(s.next_wake_tick(now, 9, hour), Some(12));
        // Just past a boundary rounds up.
        s.retry = NextDue::At(Timestamp(
            now.millis() + Duration::from_hours(3).millis() + 1,
        ));
        assert_eq!(s.next_wake_tick(now, 9, hour), Some(13));
    }

    #[test]
    fn next_wake_tick_survives_near_max_due_times() {
        let hour = Duration::from_hours(1);
        let now = Timestamp(Duration::from_hours(1).millis());
        let mut s = all_idle();
        s.expire = NextDue::At(Timestamp(u64::MAX));
        // Must not overflow: the wake lands unfathomably far out.
        let wake = s.next_wake_tick(now, 0, hour).unwrap();
        assert!(wake > 1_000_000_000);
        // Degenerate zero-length interval: clamped, still no panic.
        assert!(s.next_wake_tick(now, 0, Duration(0)).is_some());
    }
}
