//! Fault injection.
//!
//! At Azure scale everything fails: index builds, validation reads, state
//! writes, whole micro-services (§1.2, §8.3). The control plane's retry
//! and recovery machinery is only trustworthy if it is exercised, so
//! every fallible control-plane action asks the [`FaultInjector`] first.
//!
//! Faults can be injected stochastically (seeded probabilities per fault
//! point) or deterministically scripted ("fail the next N attempts at
//! this point") for tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Places where a fault can strike.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum FaultPoint {
    /// Index build fails mid-way (resource pressure, node restart).
    IndexBuild,
    /// Index drop fails (lock timeout is modeled separately).
    IndexDrop,
    /// Validation could not read execution statistics.
    ValidationRead,
    /// DTA session killed (server restarts, interference abort).
    DtaSession,
    /// Control-plane state write failed.
    StateWrite,
}

/// Kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// Retryable (the paper's Retry state).
    Transient,
    /// Irrecoverable (the paper's Error state).
    Fatal,
}

/// The injector.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
    /// Probability of a transient fault per point.
    transient_prob: BTreeMap<FaultPoint, f64>,
    /// Probability of a fatal fault per point.
    fatal_prob: BTreeMap<FaultPoint, f64>,
    /// Scripted faults: (remaining count, kind) consumed before any
    /// stochastic draw.
    scripted: BTreeMap<FaultPoint, (u32, FaultKind)>,
    /// Total faults injected (diagnostics).
    pub injected: u64,
}

impl FaultInjector {
    /// No faults at all.
    pub fn disabled() -> FaultInjector {
        FaultInjector {
            rng: StdRng::seed_from_u64(0),
            transient_prob: BTreeMap::new(),
            fatal_prob: BTreeMap::new(),
            scripted: BTreeMap::new(),
            injected: 0,
        }
    }

    /// Stochastic faults with one probability for all points.
    pub fn uniform(seed: u64, transient_prob: f64, fatal_prob: f64) -> FaultInjector {
        let mut f = FaultInjector::disabled();
        f.rng = StdRng::seed_from_u64(seed);
        for p in [
            FaultPoint::IndexBuild,
            FaultPoint::IndexDrop,
            FaultPoint::ValidationRead,
            FaultPoint::DtaSession,
            FaultPoint::StateWrite,
        ] {
            f.transient_prob.insert(p, transient_prob);
            f.fatal_prob.insert(p, fatal_prob);
        }
        f
    }

    /// Set probabilities for one point.
    pub fn set_probability(&mut self, point: FaultPoint, transient: f64, fatal: f64) {
        self.transient_prob.insert(point, transient);
        self.fatal_prob.insert(point, fatal);
    }

    /// Script the next `n` calls at `point` to fail with `kind`.
    pub fn script(&mut self, point: FaultPoint, n: u32, kind: FaultKind) {
        self.scripted.insert(point, (n, kind));
    }

    /// Ask whether the current action fails. Consumes scripted faults
    /// first, then draws stochastically.
    pub fn check(&mut self, point: FaultPoint) -> Option<FaultKind> {
        if let Some((n, kind)) = self.scripted.get_mut(&point) {
            if *n > 0 {
                *n -= 1;
                self.injected += 1;
                return Some(*kind);
            }
        }
        let fatal = self.fatal_prob.get(&point).copied().unwrap_or(0.0);
        if fatal > 0.0 && self.rng.random::<f64>() < fatal {
            self.injected += 1;
            return Some(FaultKind::Fatal);
        }
        let transient = self.transient_prob.get(&point).copied().unwrap_or(0.0);
        if transient > 0.0 && self.rng.random::<f64>() < transient {
            self.injected += 1;
            return Some(FaultKind::Transient);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fails() {
        let mut f = FaultInjector::disabled();
        for _ in 0..1000 {
            assert_eq!(f.check(FaultPoint::IndexBuild), None);
        }
    }

    #[test]
    fn scripted_faults_consumed_in_order() {
        let mut f = FaultInjector::disabled();
        f.script(FaultPoint::IndexBuild, 2, FaultKind::Transient);
        assert_eq!(f.check(FaultPoint::IndexBuild), Some(FaultKind::Transient));
        assert_eq!(f.check(FaultPoint::IndexBuild), Some(FaultKind::Transient));
        assert_eq!(f.check(FaultPoint::IndexBuild), None);
        // Other points untouched.
        assert_eq!(f.check(FaultPoint::IndexDrop), None);
    }

    #[test]
    fn stochastic_rates_approximate_config() {
        let mut f = FaultInjector::uniform(7, 0.2, 0.0);
        let mut hits = 0;
        for _ in 0..5000 {
            if f.check(FaultPoint::ValidationRead).is_some() {
                hits += 1;
            }
        }
        let rate = hits as f64 / 5000.0;
        assert!((rate - 0.2).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn fatal_beats_transient() {
        let mut f = FaultInjector::uniform(1, 0.0, 1.0);
        assert_eq!(f.check(FaultPoint::DtaSession), Some(FaultKind::Fatal));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = FaultInjector::uniform(42, 0.3, 0.01);
        let mut b = FaultInjector::uniform(42, 0.3, 0.01);
        for _ in 0..200 {
            assert_eq!(a.check(FaultPoint::StateWrite), b.check(FaultPoint::StateWrite));
        }
    }
}
