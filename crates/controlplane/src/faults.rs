//! Fault injection.
//!
//! At Azure scale everything fails: index builds, validation reads, state
//! writes, whole micro-services (§1.2, §8.3). The control plane's retry
//! and recovery machinery is only trustworthy if it is exercised, so
//! every fallible control-plane action asks the [`FaultInjector`] first.
//!
//! Faults can be injected stochastically (seeded probabilities per fault
//! point) or deterministically scripted ("fail the next N attempts at
//! this point") for tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Places where a fault can strike.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum FaultPoint {
    /// Index build fails mid-way (resource pressure, node restart).
    IndexBuild,
    /// Index drop fails (lock timeout is modeled separately).
    IndexDrop,
    /// Validation could not read execution statistics.
    ValidationRead,
    /// DTA session killed (server restarts, interference abort).
    DtaSession,
    /// Control-plane state write failed.
    StateWrite,
    /// The process died mid-journal-write, tearing the final record.
    /// Opt-in only: [`FaultInjector::uniform`] does not arm it.
    JournalTear,
    /// The whole tenant worker panics mid-tick. Opt-in only; consumed by
    /// the fleet driver's supervisor, not by the control plane.
    TenantPanic,
    /// The process died mid-checkpoint-write, tearing the checkpoint
    /// frame compaction just appended. Recovery must step down the
    /// fallback ladder (previous checkpoint, then full replay).
    /// Opt-in only: [`FaultInjector::uniform`] does not arm it.
    CheckpointTear,
}

/// Kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// Retryable (the paper's Retry state).
    Transient,
    /// Irrecoverable (the paper's Error state).
    Fatal,
}

/// The injector.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
    /// Probability of a transient fault per point.
    transient_prob: BTreeMap<FaultPoint, f64>,
    /// Probability of a fatal fault per point.
    fatal_prob: BTreeMap<FaultPoint, f64>,
    /// Scripted faults: FIFO batches of (remaining count, kind) per
    /// point, consumed before any stochastic draw. Exhausted batches
    /// (and emptied queues) are removed so the map never accumulates
    /// dead entries.
    scripted: BTreeMap<FaultPoint, Vec<(u32, FaultKind)>>,
    /// Total faults injected (diagnostics).
    pub injected: u64,
}

impl FaultInjector {
    /// No faults at all.
    pub fn disabled() -> FaultInjector {
        FaultInjector {
            rng: StdRng::seed_from_u64(0),
            transient_prob: BTreeMap::new(),
            fatal_prob: BTreeMap::new(),
            scripted: BTreeMap::new(),
            injected: 0,
        }
    }

    /// Stochastic faults with one probability for all points.
    pub fn uniform(seed: u64, transient_prob: f64, fatal_prob: f64) -> FaultInjector {
        let mut f = FaultInjector::disabled();
        f.rng = StdRng::seed_from_u64(seed);
        for p in [
            FaultPoint::IndexBuild,
            FaultPoint::IndexDrop,
            FaultPoint::ValidationRead,
            FaultPoint::DtaSession,
            FaultPoint::StateWrite,
        ] {
            f.transient_prob.insert(p, transient_prob);
            f.fatal_prob.insert(p, fatal_prob);
        }
        f
    }

    /// Set probabilities for one point.
    pub fn set_probability(&mut self, point: FaultPoint, transient: f64, fatal: f64) {
        self.transient_prob.insert(point, transient);
        self.fatal_prob.insert(point, fatal);
    }

    /// Script the next `n` calls at `point` to fail with `kind`.
    /// Chainable: a second script on the same point queues up *after*
    /// any batches already pending rather than overwriting them, so a
    /// harness can program e.g. 2 transients followed by a fatal.
    pub fn script(&mut self, point: FaultPoint, n: u32, kind: FaultKind) {
        if n == 0 {
            return;
        }
        self.scripted.entry(point).or_default().push((n, kind));
    }

    /// True when no scripted faults are pending anywhere — exhausted
    /// scripts are removed, not left behind as zero-count residue.
    pub fn scripted_is_empty(&self) -> bool {
        self.scripted.is_empty()
    }

    /// Scripted faults still pending at `point` (diagnostics).
    pub fn scripted_remaining(&self, point: FaultPoint) -> u32 {
        self.scripted
            .get(&point)
            .map(|q| q.iter().map(|(n, _)| n).sum())
            .unwrap_or(0)
    }

    /// Ask whether the current action fails. Consumes scripted faults
    /// first, then draws stochastically.
    pub fn check(&mut self, point: FaultPoint) -> Option<FaultKind> {
        if let Some(queue) = self.scripted.get_mut(&point) {
            if let Some((n, kind)) = queue.first_mut() {
                *n -= 1;
                let kind = *kind;
                if *n == 0 {
                    queue.remove(0);
                }
                if queue.is_empty() {
                    self.scripted.remove(&point);
                }
                self.injected += 1;
                return Some(kind);
            }
            self.scripted.remove(&point);
        }
        let fatal = self.fatal_prob.get(&point).copied().unwrap_or(0.0);
        if fatal > 0.0 && self.rng.random::<f64>() < fatal {
            self.injected += 1;
            return Some(FaultKind::Fatal);
        }
        let transient = self.transient_prob.get(&point).copied().unwrap_or(0.0);
        if transient > 0.0 && self.rng.random::<f64>() < transient {
            self.injected += 1;
            return Some(FaultKind::Transient);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fails() {
        let mut f = FaultInjector::disabled();
        for _ in 0..1000 {
            assert_eq!(f.check(FaultPoint::IndexBuild), None);
        }
    }

    #[test]
    fn scripted_faults_consumed_in_order() {
        let mut f = FaultInjector::disabled();
        f.script(FaultPoint::IndexBuild, 2, FaultKind::Transient);
        assert_eq!(f.check(FaultPoint::IndexBuild), Some(FaultKind::Transient));
        assert_eq!(f.check(FaultPoint::IndexBuild), Some(FaultKind::Transient));
        assert_eq!(f.check(FaultPoint::IndexBuild), None);
        // Other points untouched.
        assert_eq!(f.check(FaultPoint::IndexDrop), None);
    }

    #[test]
    fn exhausted_scripts_are_removed() {
        let mut f = FaultInjector::disabled();
        f.script(FaultPoint::IndexBuild, 1, FaultKind::Transient);
        assert!(!f.scripted_is_empty());
        assert_eq!(f.check(FaultPoint::IndexBuild), Some(FaultKind::Transient));
        assert!(f.scripted_is_empty(), "exhausted entry must be dropped");
        assert_eq!(f.scripted_remaining(FaultPoint::IndexBuild), 0);
        assert_eq!(f.check(FaultPoint::IndexBuild), None);
    }

    #[test]
    fn scripts_chain_in_fifo_order() {
        let mut f = FaultInjector::disabled();
        f.script(FaultPoint::IndexBuild, 2, FaultKind::Transient);
        f.script(FaultPoint::IndexBuild, 1, FaultKind::Fatal);
        assert_eq!(f.scripted_remaining(FaultPoint::IndexBuild), 3);
        assert_eq!(f.check(FaultPoint::IndexBuild), Some(FaultKind::Transient));
        assert_eq!(f.check(FaultPoint::IndexBuild), Some(FaultKind::Transient));
        assert_eq!(f.check(FaultPoint::IndexBuild), Some(FaultKind::Fatal));
        assert_eq!(f.check(FaultPoint::IndexBuild), None);
        assert!(f.scripted_is_empty());
    }

    #[test]
    fn zero_count_script_is_a_noop() {
        let mut f = FaultInjector::disabled();
        f.script(FaultPoint::StateWrite, 0, FaultKind::Fatal);
        assert!(f.scripted_is_empty());
        assert_eq!(f.check(FaultPoint::StateWrite), None);
    }

    #[test]
    fn uniform_leaves_opt_in_points_unarmed() {
        // JournalTear and TenantPanic must never fire from the blanket
        // stochastic config — they are armed explicitly by chaos tests.
        let mut f = FaultInjector::uniform(3, 1.0, 1.0);
        assert_eq!(f.check(FaultPoint::JournalTear), None);
        assert_eq!(f.check(FaultPoint::TenantPanic), None);
        assert_eq!(f.check(FaultPoint::CheckpointTear), None);
        assert_eq!(f.check(FaultPoint::IndexBuild), Some(FaultKind::Fatal));
    }

    #[test]
    fn stochastic_rates_approximate_config() {
        let mut f = FaultInjector::uniform(7, 0.2, 0.0);
        let mut hits = 0;
        for _ in 0..5000 {
            if f.check(FaultPoint::ValidationRead).is_some() {
                hits += 1;
            }
        }
        let rate = hits as f64 / 5000.0;
        assert!((rate - 0.2).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn fatal_beats_transient() {
        let mut f = FaultInjector::uniform(1, 0.0, 1.0);
        assert_eq!(f.check(FaultPoint::DtaSession), Some(FaultKind::Fatal));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = FaultInjector::uniform(42, 0.3, 0.01);
        let mut b = FaultInjector::uniform(42, 0.3, 0.01);
        for _ in 0..200 {
            assert_eq!(
                a.check(FaultPoint::StateWrite),
                b.check(FaultPoint::StateWrite)
            );
        }
    }
}
