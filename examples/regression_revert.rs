//! Regression and auto-revert: the validator earning its keep.
//!
//! The Missing-Indexes recommender never sees index maintenance costs
//! (§5.2), so on a write-heavy table it can recommend an index whose
//! SELECT-side benefit is dwarfed by the extra work every INSERT and
//! UPDATE now pays. The paper's answer is not a smarter estimator — it is
//! **measurement**: validate actual execution costs and auto-revert
//! (§6, §8.1: "many reverts are due to writes becoming more expensive").
//!
//! This example builds exactly that trap, lets the control plane walk
//! into it, and shows the state machine go
//! `Active → Implementing → Validating → Reverting → Reverted`.
//!
//! ```text
//! cargo run -p bench --release --example regression_revert
//! ```

use controlplane::{
    ControlPlane, DbSettings, EventKind, ManagedDb, PlanePolicy, ServerSettings, Setting,
};
use sqlmini::clock::{Duration, SimClock};
use sqlmini::engine::{Database, DbConfig};
use sqlmini::parser::parse_template;
use sqlmini::schema::{ColumnDef, TableDef};
use sqlmini::types::{Value, ValueType};

fn main() {
    let mut db = Database::new("writeheavy", DbConfig::default(), SimClock::new());
    let events = db
        .create_table(TableDef::new(
            "events",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("device_id", ValueType::Int),
                ColumnDef::new("payload", ValueType::Float),
            ],
        ))
        .unwrap();
    db.load_rows(
        events,
        (0..30_000i64).map(|i| vec![Value::Int(i), Value::Int(i % 500), Value::Float(0.0)]),
    );
    db.rebuild_stats(events);

    // A rare dashboard query (generates MI demand for device_id)...
    let dashboard = parse_template(
        db.catalog(),
        "SELECT id, payload FROM events WHERE device_id = @p0",
    )
    .unwrap();
    // ...swamped by an ingest firehose.
    let ingest = parse_template(db.catalog(), "INSERT INTO events VALUES (@p0, @p1, 0.5)").unwrap();

    let settings = DbSettings {
        auto_create: Setting::On,
        auto_drop: Setting::On,
    };
    let mut mdb = ManagedDb::new(db, settings, ServerSettings::default());
    let mut plane = ControlPlane::new(PlanePolicy {
        analysis_interval: Duration::from_hours(4),
        validation_min_wait: Duration::from_hours(2),
        ..PlanePolicy::default()
    });

    let mut next_id = 30_000i64;
    println!("driving a 95%-write workload under the control plane...\n");
    for hour in 0..48u64 {
        // 3 dashboard queries, 60 inserts per hour.
        for i in 0..3 {
            mdb.db
                .execute(&dashboard, &[Value::Int((hour * 3 + i) as i64 % 500)])
                .unwrap();
        }
        for _ in 0..60 {
            mdb.db
                .execute(&ingest, &[Value::Int(next_id), Value::Int(next_id % 500)])
                .unwrap();
            next_id += 1;
        }
        mdb.db.clock().advance(Duration::from_hours(1));
        plane.tick(&mut mdb);
    }

    println!("-- recommendation histories --");
    for r in plane.store.all() {
        println!(
            "{} [{:?}] {}  (source {:?})",
            r.id,
            r.state,
            r.recommendation.action.describe(),
            r.recommendation.source
        );
        for t in &r.history {
            println!("    {} {:?} -> {:?}  {}", t.at, t.from, t.to, t.note);
        }
    }

    println!("\n-- telemetry --");
    for (k, v) in plane.telemetry.counters() {
        println!("  {k:?}: {v}");
    }
    let reverts = plane.telemetry.count(EventKind::RevertSucceeded);
    let regressions = plane.telemetry.count(EventKind::ValidationRegressed);
    println!(
        "\nthe validator detected {regressions} regression(s) and reverted {reverts} index(es);\n\
         the ingest statement's CPU had risen from the new index's maintenance, and no\n\
         amount of optimizer estimation would have caught that — only measurement does."
    );
    assert!(
        mdb.db
            .catalog()
            .indexes()
            .all(|(_, d)| d.origin != sqlmini::schema::IndexOrigin::Auto)
            || reverts == 0,
        "any surviving auto index must have genuinely validated"
    );
}
