//! Workload drift and continuous tuning: the lifecycle reason indexing
//! can never be one-shot (§1.1 task v: "continuously tuning the database
//! as the workload drifts").
//!
//! Acts one and two of a database's life:
//!
//! * **Act 1** — the app ships with feature A; the service indexes it.
//! * **Act 2** — at day 10 the app's feature B launches (new dominant
//!   query); feature A is retired. The service must (a) recommend a new
//!   index for B, and (b) eventually flag A's now-unused index as a drop
//!   candidate, while its slope test keeps stale MI candidates out.
//!
//! ```text
//! cargo run -p bench --release --example drift_tuning
//! ```

use autoindex::RecoAction;
use controlplane::{ControlPlane, DbSettings, ManagedDb, PlanePolicy, ServerSettings, Setting};
use sqlmini::clock::{Duration, SimClock};
use sqlmini::engine::{Database, DbConfig};
use sqlmini::parser::parse_template;
use sqlmini::schema::{ColumnDef, TableDef};
use sqlmini::types::{Value, ValueType};

fn main() {
    let mut db = Database::new("drifting", DbConfig::default(), SimClock::new());
    let t = db
        .create_table(TableDef::new(
            "items",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("feature_a_key", ValueType::Int),
                ColumnDef::new("feature_b_key", ValueType::Int),
                ColumnDef::new("v", ValueType::Float),
            ],
        ))
        .unwrap();
    db.load_rows(
        t,
        (0..40_000i64).map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % 800),
                Value::Int((i * 7) % 900),
                Value::Float((i % 300) as f64),
            ]
        }),
    );
    db.rebuild_stats(t);

    let query_a = parse_template(
        db.catalog(),
        "SELECT id, v FROM items WHERE feature_a_key = @p0",
    )
    .unwrap();
    let query_b = parse_template(
        db.catalog(),
        "SELECT id, v FROM items WHERE feature_b_key = @p0",
    )
    .unwrap();

    let settings = DbSettings {
        auto_create: Setting::On,
        auto_drop: Setting::On,
    };
    let mut policy = PlanePolicy {
        analysis_interval: Duration::from_hours(6),
        validation_min_wait: Duration::from_hours(3),
        ..PlanePolicy::default()
    };
    // Compress the drop analyzer's long horizon into this example's weeks.
    policy.drops.observation_window = Duration::from_days(7);
    let mut plane = ControlPlane::new(policy);
    let mut mdb = ManagedDb::new(db, settings, ServerSettings::default());

    let report_day = |plane: &ControlPlane, mdb: &ManagedDb, label: &str| {
        let autos: Vec<String> = mdb
            .db
            .catalog()
            .indexes()
            .filter(|(_, d)| d.origin == sqlmini::schema::IndexOrigin::Auto)
            .map(|(_, d)| d.to_string())
            .collect();
        let open_drops = plane
            .store
            .for_database(&mdb.db.name)
            .filter(|r| {
                matches!(r.recommendation.action, RecoAction::DropIndex { .. })
                    && !r.state.is_terminal()
            })
            .count();
        println!("{label}: auto indexes = {autos:?}; open drop recommendations = {open_drops}");
    };

    println!("== Act 1: feature A dominates (days 0-10) ==");
    for hour in 0..(10 * 24) {
        for i in 0..25 {
            mdb.db
                .execute(&query_a, &[Value::Int((hour * 25 + i) as i64 % 800)])
                .unwrap();
        }
        mdb.db.clock().advance(Duration::from_hours(1));
        plane.tick(&mut mdb);
    }
    report_day(&plane, &mdb, "day 10");

    println!("\n== Act 2: feature B launches, feature A retired (days 10-28) ==");
    for hour in 0..(18 * 24) {
        for i in 0..25 {
            mdb.db
                .execute(&query_b, &[Value::Int((hour * 25 + i) as i64 % 900)])
                .unwrap();
        }
        mdb.db.clock().advance(Duration::from_hours(1));
        plane.tick(&mut mdb);
    }
    report_day(&plane, &mdb, "day 28");

    println!("\n-- final recommendation ledger --");
    for r in plane.store.all() {
        println!(
            "  {} [{:?}] {}",
            r.id,
            r.state,
            r.recommendation.action.describe()
        );
    }

    let has_b_index = mdb.db.catalog().indexes().any(|(_, d)| {
        d.origin == sqlmini::schema::IndexOrigin::Auto
            && d.key_columns.contains(&sqlmini::schema::ColumnId(2))
    });
    let a_drop_flagged = plane.store.all().any(|r| {
        matches!(&r.recommendation.action,
            RecoAction::DropIndex { name, .. } if name.contains("c1"))
    });
    println!(
        "\nfeature B auto-indexed: {has_b_index}; feature A index flagged for drop: {a_drop_flagged}"
    );
    println!("the service followed the workload across the drift without human input.");
}
