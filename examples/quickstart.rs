//! Quickstart: the auto-indexing loop on one database, end to end.
//!
//! Creates a small database through the SQL API, runs a workload, asks
//! the Missing-Indexes recommender for advice, implements the top
//! recommendation, and validates the improvement statistically — the
//! whole §1.3 loop in one file.
//!
//! ```text
//! cargo run -p bench --release --example quickstart
//! ```

use autoindex::classifier::ImpactClassifier;
use autoindex::mi::{recommend, MiConfig, MiSnapshotStore};
use autoindex::validator::{validate, ChangeKind, ValidatorConfig};
use autoindex::RecoAction;
use sqlmini::clock::{Duration, SimClock};
use sqlmini::engine::{Database, DbConfig};
use sqlmini::parser::parse_template;
use sqlmini::schema::{ColumnDef, TableDef};
use sqlmini::types::{Value, ValueType};

fn main() {
    // ------------------------------------------------------------------
    // 1. A database with a table and no indexes.
    // ------------------------------------------------------------------
    let clock = SimClock::new();
    let mut db = Database::new("quickstart", DbConfig::default(), clock);
    let orders = db
        .create_table(TableDef::new(
            "orders",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("customer_id", ValueType::Int),
                ColumnDef::new("status", ValueType::Str),
                ColumnDef::new("total", ValueType::Float),
            ],
        ))
        .unwrap();
    db.load_rows(
        orders,
        (0..50_000i64).map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % 1000),
                Value::Str(if i % 4 == 0 { "open" } else { "done" }.into()),
                Value::Float((i % 500) as f64),
            ]
        }),
    );
    db.rebuild_stats(orders);
    println!("loaded {} rows into `orders`\n", db.table_rows(orders));

    // ------------------------------------------------------------------
    // 2. The application's hot query, written in SQL.
    // ------------------------------------------------------------------
    let lookup = parse_template(
        db.catalog(),
        "SELECT id, total FROM orders WHERE customer_id = @p0",
    )
    .unwrap();

    let mut store = MiSnapshotStore::new();
    let run_workload = |db: &mut Database, store: &mut MiSnapshotStore, hours: u64| {
        let start = db.clock().now();
        for h in 0..hours {
            for i in 0..30 {
                db.execute(&lookup, &[Value::Int((h * 30 + i) as i64 % 1000)])
                    .unwrap();
            }
            db.clock().advance(Duration::from_hours(1));
            store.take_snapshot(db);
        }
        (start, db.clock().now())
    };

    let before_window = run_workload(&mut db, &mut store, 6);
    let sample = db.execute(&lookup, &[Value::Int(7)]).unwrap();
    println!(
        "before tuning: the lookup reads {} pages / {:.0}us CPU per execution (table scan)",
        sample.metrics.logical_reads, sample.metrics.cpu_us
    );

    // ------------------------------------------------------------------
    // 3. Ask the MI recommender.
    // ------------------------------------------------------------------
    let analysis = recommend(
        &db,
        &store,
        &MiConfig::default(),
        &ImpactClassifier::default(),
    );
    println!(
        "\nMI recommender produced {} recommendation(s):",
        analysis.recommendations.len()
    );
    for r in &analysis.recommendations {
        println!(
            "  {}   est. improvement {:.0}%   est. size {} KiB",
            r.action.describe(),
            r.estimated_improvement * 100.0,
            r.estimated_size_bytes / 1024
        );
    }
    let reco = analysis.recommendations.first().expect("a recommendation");

    // ------------------------------------------------------------------
    // 4. Implement it (online) and keep the workload running.
    // ------------------------------------------------------------------
    let RecoAction::CreateIndex { def } = &reco.action else {
        unreachable!("MI only proposes creates")
    };
    let index_name = def.name.clone();
    let (_, report) = db.create_index(def.clone()).unwrap();
    println!(
        "\ncreated {index_name} online: {} KiB built in {}, {} KiB of log",
        report.index_size_bytes / 1024,
        report.build_duration,
        report.log_bytes / 1024
    );

    let after_window = run_workload(&mut db, &mut store, 6);
    let sample = db.execute(&lookup, &[Value::Int(7)]).unwrap();
    println!(
        "after tuning: the lookup reads {} pages / {:.0}us CPU per execution (index seek)",
        sample.metrics.logical_reads, sample.metrics.cpu_us
    );

    // ------------------------------------------------------------------
    // 5. Validate the change statistically (Welch t-test on CPU time).
    // ------------------------------------------------------------------
    let outcome = validate(
        &db,
        &index_name,
        ChangeKind::Created,
        before_window,
        after_window,
        &ValidatorConfig::default(),
    );
    println!("\nvalidation verdict: {:?}", outcome.verdict);
    for s in &outcome.statements {
        println!(
            "  query {}: CPU {:.0}us -> {:.0}us ({:+.0}%), t = {:.1}, p = {:.4}",
            s.query_id,
            s.cpu_before.mean,
            s.cpu_after.mean,
            s.cpu_change * 100.0,
            s.cpu_test.map(|t| t.t).unwrap_or(f64::NAN),
            s.cpu_test.map(|t| t.p_two_sided).unwrap_or(f64::NAN),
        );
    }
    println!("\n(the control plane automates exactly this loop — see the saas_fleet example)");
}
