//! SaaS-vendor fleet: the customer scenario the paper's introduction
//! motivates (§1.1) — hundreds of similar databases, one per customer of
//! the vendor's application, far too many for hand tuning.
//!
//! A fleet of tenants running the *same application schema/workload* (one
//! seed) with different data scales is managed by one control plane with
//! auto-implementation on. The example reports per-database improvements
//! and — the feature SaaS vendors asked for in §8.2 — which indexes were
//! beneficial across a significant fraction of the fleet.
//!
//! ```text
//! cargo run -p bench --release --example saas_fleet
//! ```

use autoindex::RecoAction;
use controlplane::{ControlPlane, DbSettings, ManagedDb, PlanePolicy, RecoState, ServerSettings};
use experiment::analysis::workload_cost_fixed_counts;
use sqlmini::clock::Duration;
use sqlmini::engine::ServiceTier;
use sqlmini::querystore::Metric;
use std::collections::BTreeMap;
use workload::{generate_tenant, TenantConfig};

fn main() {
    const FLEET: usize = 12;
    println!("== SaaS vendor: {FLEET} customer databases, one application ==\n");

    let mut plane = ControlPlane::new(PlanePolicy {
        analysis_interval: Duration::from_hours(6),
        validation_min_wait: Duration::from_hours(3),
        ..PlanePolicy::default()
    });

    // All tenants share the application (same schema/workload seed); the
    // data scale varies per customer. The vendor opted into auto-create
    // at the *server* level; databases inherit (§2).
    let server = ServerSettings {
        auto_create: true,
        auto_drop: true,
    };

    let mut improvements: Vec<(String, f64)> = Vec::new();
    let mut index_popularity: BTreeMap<String, usize> = BTreeMap::new();

    for i in 0..FLEET {
        let mut cfg = TenantConfig::new(format!("customer{i:02}"), 777, ServiceTier::Standard);
        cfg.schema.min_tables = 2;
        cfg.schema.max_tables = 3;
        // Same schema & queries; different data volume per customer.
        cfg.schema.min_rows = 2_000 + (i as u64) * 1_500;
        cfg.schema.max_rows = cfg.schema.min_rows + 4_000;
        cfg.workload.base_rate_per_hour = 150.0;
        cfg.user_indexes.n_useful = 0; // the vendor never hand-tuned
        cfg.user_indexes.n_duplicate = 0;
        cfg.user_indexes.n_unused = 0;
        cfg.db.seed = 1000 + i as u64; // independent noise per customer
        let tenant = generate_tenant(&cfg);
        let model = tenant.model.clone();
        let mut runner = workload::WorkloadRunner::new(i as u64);
        let mut mdb = ManagedDb::new(tenant.db, DbSettings::default(), server);

        // Day 0: untuned baseline.
        runner.run(&mut mdb.db, &model, Duration::from_hours(24));
        let day0 = (sqlmini::clock::Timestamp::EPOCH, mdb.db.clock().now());

        // A week under management.
        for _ in 0..(7 * 8) {
            runner.run(&mut mdb.db, &model, Duration::from_hours(3));
            plane.tick(&mut mdb);
        }

        // Final day.
        let f0 = mdb.db.clock().now();
        runner.run(&mut mdb.db, &model, Duration::from_hours(24));
        let fin = (f0, mdb.db.clock().now());

        let base = workload_cost_fixed_counts(&mdb.db, Metric::CpuTime, day0, day0);
        let now = workload_cost_fixed_counts(&mdb.db, Metric::CpuTime, day0, fin);
        let improvement = if base.total > 0.0 {
            (base.total - now.total) / base.total
        } else {
            0.0
        };
        improvements.push((mdb.db.name.clone(), improvement));

        // Which auto indexes survived validation on this customer?
        for r in plane.store.for_database(&mdb.db.name) {
            if r.state == RecoState::Success {
                if let RecoAction::CreateIndex { def } = &r.recommendation.action {
                    // The name encodes table+key shape, comparable across
                    // the fleet because the schema seed is shared.
                    *index_popularity.entry(def.name.clone()).or_default() += 1;
                }
            }
        }
    }

    println!("-- per-customer workload CPU improvement after one managed week --");
    for (name, imp) in &improvements {
        println!("  {name}: {:+.1}%", imp * 100.0);
    }
    let avg = improvements.iter().map(|(_, i)| i).sum::<f64>() / improvements.len() as f64;
    println!("  fleet average: {:+.1}%", avg * 100.0);

    println!("\n-- indexes validated on a significant fraction of the fleet (§8.2 ask) --");
    let mut pop: Vec<(&String, &usize)> = index_popularity.iter().collect();
    pop.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
    for (name, n) in pop.iter().take(8) {
        let frac = **n as f64 / FLEET as f64 * 100.0;
        let marker = if frac >= 50.0 {
            "  <= fleet-wide candidate"
        } else {
            ""
        };
        println!("  {name}: beneficial on {n}/{FLEET} databases ({frac:.0}%){marker}");
    }
    println!(
        "\nan index validated on most customers is exactly what the vendor would fold\n\
         into the application's schema model (§8.2's deployment-integration lesson)."
    );
}
