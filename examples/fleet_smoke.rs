//! Fleet-driver smoke run: the CI guard for the parallel control loop.
//!
//! Default shape: 64 mixed-tier tenants for 4 ticks on 4 worker
//! threads, then a serial replay of the same fleet, checking the
//! end-of-run state is byte-identical — the determinism contract,
//! exercised at a fleet size big enough to force real work stealing,
//! small enough to finish well inside CI's two-minute budget.
//!
//! Flags reshape the run for scheduler smokes (CI drives a
//! 2048-tenant, 95%-idle sparse sweep through these):
//!
//! ```text
//! cargo run -p bench --release --example fleet_smoke
//! cargo run -p bench --release --example fleet_smoke -- \
//!     --tenants 2048 --active-pct 0.05 --sparse --ticks 6 --threads 4
//! ```
//!
//! `--tenants N` / `--active-pct P` switch to the mostly-idle
//! scheduler-bench fleet; `--sparse` / `--dense` pin the scheduling
//! mode (default: the driver's default mode). `--crash-every K`
//! crash-recovers every tenant's journaled store at the start of every
//! K-th tick — the chaos smoke: recovery (checkpoint + tail replay
//! under the default compaction policy) must be invisible in the
//! determinism check.
//!
//! `--shards N` routes the run through the sharded region driver
//! (coordinator → shard workers, lazy hydration) instead of the
//! monolithic loop, then replays unsharded and asserts the canonical
//! digests match — the sharding-is-invisible contract. CI drives
//! `{1, 4, 16}` shards through this flag:
//!
//! ```text
//! cargo run -p bench --release --example fleet_smoke -- \
//!     --shards 16 --tenants 2048 --active-pct 0.05 --sparse
//! ```

use bench::{sparse_fleet, Args, SparseFleetSpec};
use controlplane::{
    FleetDriver, FleetDriverConfig, HydrationMode, PlanePolicy, RegionConfig, RegionCoordinator,
    SchedulingMode,
};
use sqlmini::clock::Duration;
use workload::fleet::{generate_fleet, FleetSpec, MixedFleetSpec, Tenant, TierMix};

fn main() {
    let args = Args::parse();
    let ticks = args.get_u64("ticks", 4) as u32;
    let threads = args.get_usize("threads", 4);
    let seed = args.get_u64("seed", 7);
    let scheduling = if args.has("sparse") {
        SchedulingMode::Sparse
    } else if args.has("dense") {
        SchedulingMode::Dense
    } else {
        SchedulingMode::default()
    };
    let crash_every = args.get_u64("crash-every", 0) as u32;

    // `--tenants`/`--active-pct` select the mostly-idle scheduler fleet;
    // the default remains the original mixed-tier 64-tenant smoke.
    let scheduler_fleet = args.has("tenants") || args.has("active-pct");
    let tenants = args.get_usize("tenants", 64);
    let active_pct = args.get_f64("active-pct", 0.05);
    let fleet = |s: u64| -> Vec<Tenant> {
        if scheduler_fleet {
            sparse_fleet(tenants, active_pct, s)
        } else {
            generate_fleet(
                tenants,
                TierMix {
                    basic: 0.9,
                    standard: 0.1,
                    premium: 0.0,
                },
                s,
            )
        }
    };
    let driver_config = FleetDriverConfig {
        policy: PlanePolicy {
            analysis_interval: Duration::from_hours(2),
            validation_min_wait: Duration::from_hours(1),
            ..PlanePolicy::default()
        },
        fault_seed: Some(2024),
        fault_transient_prob: 0.1,
        fault_fatal_prob: 0.01,
        scheduling,
        crash_every_ticks: (crash_every > 0).then_some(crash_every),
        ..FleetDriverConfig::default()
    };

    if args.has("shards") {
        let shards = args.get_usize("shards", 4);
        let spec: Box<dyn FleetSpec> = if scheduler_fleet {
            Box::new(SparseFleetSpec::new(tenants, active_pct, seed))
        } else {
            Box::new(MixedFleetSpec::new(
                tenants,
                TierMix {
                    basic: 0.9,
                    standard: 0.1,
                    premium: 0.0,
                },
                seed,
            ))
        };
        let coordinator = RegionCoordinator::new(RegionConfig {
            driver: driver_config.clone(),
            shards,
            threads_per_shard: threads,
            hydration: HydrationMode::Lazy,
            ..RegionConfig::default()
        });
        let region = coordinator.run(spec.as_ref(), ticks);
        println!(
            "sharded: {} tenants across {} shards x {} ticks in {:.2?} ({:.1} tenant-ticks/s)",
            region.tenants,
            region.shards,
            region.ticks,
            region.elapsed,
            region.throughput(),
        );
        println!("fleet states: {:?}", region.by_state);
        println!(
            "scheduler ({:?}): {} control passes executed, {} skipped",
            scheduling,
            region.control_ticks_executed(),
            region.control_ticks_skipped(),
        );
        println!(
            "peak hydrated tenants: {} (fleet size {})",
            region.peak_hydrated, region.tenants,
        );

        // Sharding-is-invisible contract: the monolithic loop over the
        // same spec must produce the same canonical digest.
        let oracle = FleetDriver::new(driver_config).run(spec.materialize(), ticks, threads);
        assert_eq!(
            region.digest,
            oracle.canonical_digest(),
            "sharded region digest must match the unsharded oracle"
        );
        if let Some(canonical) = &region.canonical {
            assert_eq!(
                canonical,
                &oracle.canonical_string(),
                "sharded canonical string must match the unsharded oracle"
            );
        }
        println!("determinism check: {shards} shards == unsharded, byte for byte");
        return;
    }

    let driver = FleetDriver::new(driver_config);
    let parallel = driver.run(fleet(seed), ticks, threads);
    println!(
        "parallel: {} tenants x {} ticks on {} threads in {:.2?} ({:.1} tenant-ticks/s)",
        parallel.tenants.len(),
        parallel.ticks,
        parallel.threads,
        parallel.elapsed,
        parallel.throughput(),
    );
    println!("fleet states: {:?}", parallel.by_state);
    println!(
        "scheduler ({:?}): {} control passes executed, {} skipped",
        scheduling,
        parallel.control_ticks_executed(),
        parallel.control_ticks_skipped(),
    );
    if crash_every > 0 {
        println!(
            "chaos (--crash-every {}): {} store recoveries, {} checkpoints written, \
             {} frames compacted, {} journal bytes retained",
            crash_every,
            parallel.store_recoveries(),
            parallel.checkpoints_written(),
            parallel.frames_compacted(),
            parallel.journal_bytes(),
        );
    }
    if !scheduler_fleet {
        println!("telemetry:\n{}", parallel.telemetry.export_json());
    }

    let serial = driver.run(fleet(seed), ticks, 1);
    println!(
        "serial replay in {:.2?} ({:.1} tenant-ticks/s)",
        serial.elapsed,
        serial.throughput(),
    );
    assert_eq!(
        serial.canonical_string(),
        parallel.canonical_string(),
        "parallel fleet state must replay byte-identically in serial mode"
    );
    println!("determinism check: parallel == serial, byte for byte");
}
