//! Fleet-driver smoke run: the CI guard for the parallel control loop.
//!
//! Drives 64 tenants for 4 ticks on 4 worker threads, then replays the
//! same fleet serially and checks the end-of-run state is
//! byte-identical — the determinism contract, exercised at a fleet size
//! big enough to force real work stealing, small enough to finish well
//! inside CI's two-minute budget.
//!
//! ```text
//! cargo run -p bench --release --example fleet_smoke
//! ```

use controlplane::{FleetDriver, FleetDriverConfig, PlanePolicy};
use sqlmini::clock::Duration;
use workload::fleet::{generate_fleet, TierMix};

fn main() {
    let tenants = 64;
    let ticks = 4;
    let fleet = |s| {
        generate_fleet(
            tenants,
            TierMix {
                basic: 0.9,
                standard: 0.1,
                premium: 0.0,
            },
            s,
        )
    };
    let driver = FleetDriver::new(FleetDriverConfig {
        policy: PlanePolicy {
            analysis_interval: Duration::from_hours(2),
            validation_min_wait: Duration::from_hours(1),
            ..PlanePolicy::default()
        },
        fault_seed: Some(2024),
        fault_transient_prob: 0.1,
        fault_fatal_prob: 0.01,
        ..FleetDriverConfig::default()
    });

    let parallel = driver.run(fleet(7), ticks, 4);
    println!(
        "parallel: {} tenants x {} ticks on {} threads in {:.2?} ({:.1} tenant-ticks/s)",
        parallel.tenants.len(),
        parallel.ticks,
        parallel.threads,
        parallel.elapsed,
        parallel.throughput(),
    );
    println!("fleet states: {:?}", parallel.by_state);
    println!("telemetry:\n{}", parallel.telemetry.export_json());

    let serial = driver.run(fleet(7), ticks, 1);
    println!(
        "serial replay in {:.2?} ({:.1} tenant-ticks/s)",
        serial.elapsed,
        serial.throughput(),
    );
    assert_eq!(
        serial.canonical_string(),
        parallel.canonical_string(),
        "parallel fleet state must replay byte-identically in serial mode"
    );
    println!("determinism check: parallel == serial, byte for byte");
}
