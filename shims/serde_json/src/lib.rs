//! Offline shim for `serde_json` (see `shims/README.md`).
//!
//! Prints and parses real JSON text against the shim `serde` crate's
//! [`serde::Value`] model: `to_string`, `to_string_pretty`, `from_str`.
//! Output conventions follow serde_json (floats always carry a decimal
//! point or exponent, non-finite floats become `null`, objects keep
//! field order).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // serde_json convention: non-finite floats serialize as null.
        out.push_str("null");
        return;
    }
    let s = f.to_string();
    out.push_str(&s);
    // Keep the value recognizably a float on re-parse.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // past 'u'; expect "\uXXXX" low half
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                self.pos -= 1; // parse_hex4 advances past 'u' itself
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("bad surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| Error::new("bad \\u escape"))?
                            };
                            out.push(c);
                            // parse_hex4 leaves pos on the last hex digit.
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?}",
                                other.map(|c| c as char)
                            )));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction: we came from &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse 4 hex digits after a `u` escape. On entry `pos` is at the
    /// `u`; on exit it is at the final hex digit (caller advances past).
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                // Integers beyond u64 degrade to float, like serde_json
                // does with arbitrary_precision off.
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trip_map() {
        let mut m = BTreeMap::new();
        m.insert("alpha".to_string(), 3u64);
        m.insert("beta".to_string(), 0);
        let text = to_string_pretty(&m).unwrap();
        assert!(text.contains("\"alpha\": 3"));
        let back: BTreeMap<String, u64> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parses_nested() {
        let v: Vec<Vec<i64>> = from_str("[[1,2],[,]]".replace(",]", "]").as_str()).unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![]]);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\n\"quoted\"\tτ✓".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn floats_keep_their_type() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn negative_and_large_numbers() {
        let back: i64 = from_str("-42").unwrap();
        assert_eq!(back, -42);
        let back: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(back, u64::MAX);
    }
}
