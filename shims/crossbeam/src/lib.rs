//! Offline shim for `crossbeam` (see `shims/README.md`).
//!
//! Provides the work-stealing deque API (`deque::{Worker, Stealer,
//! Injector, Steal}`) and scoped threads (`thread::scope`, re-exported
//! from std, which stabilized scoped threads in 1.63). The deques here
//! are mutex-backed rather than lock-free: semantics match crossbeam
//! (owner pops LIFO-or-FIFO from its end, thieves steal from the
//! opposite end), and at whole-tenant task granularity the mutex is
//! nowhere near the critical path.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    impl<T> Steal<T> {
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A deque owned by one worker thread; other threads steal through
    /// [`Stealer`] handles.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
        fifo: bool,
    }

    impl<T> Worker<T> {
        pub fn new_fifo() -> Worker<T> {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
                fifo: true,
            }
        }

        pub fn new_lifo() -> Worker<T> {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
                fifo: false,
            }
        }

        pub fn push(&self, task: T) {
            self.inner.lock().unwrap().push_back(task);
        }

        /// Pop from the owner's end: front for FIFO, back for LIFO.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.inner.lock().unwrap();
            if self.fifo {
                q.pop_front()
            } else {
                q.pop_back()
            }
        }

        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
                owner_fifo: self.fifo,
            }
        }
    }

    /// Shareable handle that steals from the end opposite the owner.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
        owner_fifo: bool,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
                owner_fifo: self.owner_fifo,
            }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            let mut q = self.inner.lock().unwrap();
            let stolen = if self.owner_fifo {
                q.pop_back()
            } else {
                q.pop_front()
            };
            match stolen {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }
    }

    /// A global FIFO queue all workers can push to and steal from.
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Injector<T> {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Injector<T> {
            Injector {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, task: T) {
            self.inner.lock().unwrap().push_back(task);
        }

        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Move up to half the queue into `dest`, returning one task.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.inner.lock().unwrap();
            let first = match q.pop_front() {
                Some(t) => t,
                None => return Steal::Empty,
            };
            let batch = q.len() / 2;
            for _ in 0..batch {
                if let Some(t) = q.pop_front() {
                    dest.push(t);
                }
            }
            Steal::Success(first)
        }

        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }
    }
}

pub mod thread {
    //! Scoped threads. std's stabilized scope API (Rust 1.63+) covers
    //! everything this workspace needs; deviation from crossbeam: the
    //! closure result is returned directly, not wrapped in a Result.
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn owner_pops_fifo_thief_steals_back() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(s.steal(), Steal::Success(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_batch_steal() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        // Half of the remaining 9 moved over.
        assert_eq!(w.len(), 4);
        assert_eq!(inj.len(), 5);
    }

    #[test]
    fn concurrent_drain_loses_nothing() {
        let inj = Injector::new();
        for i in 0..1000u64 {
            inj.push(i);
        }
        let total: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut sum = 0;
                        while let Steal::Success(x) = inj.steal() {
                            sum += x;
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, (0..1000).sum());
    }
}
