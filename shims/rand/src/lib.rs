//! Offline shim for the `rand` crate (see `shims/README.md`).
//!
//! Implements the subset this workspace uses: `rngs::StdRng` seeded via
//! `SeedableRng::seed_from_u64`, `Rng::random` / `Rng::random_range`,
//! and `seq::SliceRandom::shuffle`. The generator is xoshiro256++ with
//! SplitMix64 seed expansion: deterministic per seed, statistically
//! solid for simulation purposes. The stream does NOT match the real
//! `rand` crate's StdRng (ChaCha12); nothing in this repo depends on
//! the specific stream, only on per-seed determinism.

/// Core of every generator: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is a fixed point for xoshiro; splitmix64
            // cannot produce four zero words from any seed, but guard
            // anyway so the invariant is local.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Types samplable uniformly over their "natural" domain (`Rng::random`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (`Rng::random_range`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from [0, span) without modulo bias worth caring about
/// for simulation spans (span << 2^64 everywhere in this workspace).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening-multiply trick (Lemire): maps next_u64 into [0, span).
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Full-width inclusive range: any word is uniform.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling trait.
pub trait Rng: RngCore {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn random_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice helpers (`shuffle` is the only one this workspace uses).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.random::<f64>().to_bits(), b.random::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<f64>(), c.random::<f64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = r.random_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn f64_uniformity_rough() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
