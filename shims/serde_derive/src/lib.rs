//! Offline shim for `serde_derive` (see `shims/README.md`).
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls against the
//! shim `serde` crate's `Value` model. The parser below hand-walks the
//! `proc_macro::TokenStream` (no `syn`/`quote` in this environment) and
//! supports exactly the item shapes this workspace derives on:
//! non-generic structs (named / tuple / unit) and non-generic enums with
//! unit, newtype, tuple, and struct variants, using serde's external
//! tagging. Unsupported shapes fail the build with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match (mode, &item) {
        (Mode::Serialize, Item::Struct { name, fields }) => gen_struct_ser(name, fields),
        (Mode::Deserialize, Item::Struct { name, fields }) => gen_struct_de(name, fields),
        (Mode::Serialize, Item::Enum { name, variants }) => gen_enum_ser(name, variants),
        (Mode::Deserialize, Item::Enum { name, variants }) => gen_enum_de(name, variants),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type {name}"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body for {name}: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body for {name}, got {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for item kind {other}")),
    }
}

/// Skip any number of outer attributes (`#[...]`) and a visibility
/// qualifier (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // '[...]'
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // '(crate)'
                }
            }
            _ => return,
        }
    }
}

/// Split a token sequence on commas at angle-bracket depth zero.
/// (Groups are single trees, but generic arguments like
/// `BTreeMap<String, u64>` put commas behind bare `<`/`>` puncts.)
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    out.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        out.last_mut().unwrap().push(tt);
    }
    if out.last().map(Vec::is_empty).unwrap_or(false) {
        out.pop();
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level_commas(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => return Err(format!("expected field name, got {other:?}")),
        }
        match chunk.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected ':' after field name, got {other:?}")),
        }
    }
    Ok(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level_commas(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let fields = match chunk.get(i) {
            None => Fields::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "explicit discriminants unsupported (variant {name})"
                ));
            }
            other => return Err(format!("unsupported variant shape {name}: {other:?}")),
        };
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed)
// ---------------------------------------------------------------------

fn named_fields_to_object(accessor: impl Fn(&str) -> String, names: &[String]) -> String {
    let entries: Vec<String> = names
        .iter()
        .map(|n| {
            format!(
                "(::std::string::String::from({n:?}), ::serde::Serialize::to_value({})),",
                accessor(n)
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", entries.join(""))
}

fn named_fields_from_object(ty_path: &str, source: &str, names: &[String]) -> String {
    let inits: Vec<String> = names
        .iter()
        .map(|n| {
            format!(
                "{n}: ::serde::Deserialize::from_value(::serde::find({source}, {n:?})\
                 .ok_or_else(|| ::serde::Error::msg(::std::format!(\"missing field {n} in {ty_path}\")))?)?,"
            )
        })
        .collect();
    format!("{ty_path} {{ {} }}", inits.join(""))
}

fn gen_struct_ser(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(""))
        }
        Fields::Named(names) => named_fields_to_object(|n| format!("&self.{n}"), names),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\
         }}"
    )
}

fn gen_struct_de(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array for {name}\"))?;\
                 if items.len() != {n} {{\
                     return ::std::result::Result::Err(::serde::Error::msg(\"wrong tuple arity for {name}\"));\
                 }}\
                 ::std::result::Result::Ok({name}({}))",
                items.join("")
            )
        }
        Fields::Named(names) => format!(
            "let fields = v.as_object().ok_or_else(|| ::serde::Error::msg(\"expected object for {name}\"))?;\
             ::std::result::Result::Ok({})",
            named_fields_from_object(name, "fields", names)
        ),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\
         }}"
    )
}

fn gen_enum_ser(name: &str, variants: &[(String, Fields)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(vname, fields)| match fields {
            Fields::Unit => format!(
                "Self::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
            ),
            Fields::Tuple(1) => format!(
                "Self::{vname}(f0) => ::serde::Value::Object(::std::vec![(\
                     ::std::string::String::from({vname:?}), ::serde::Serialize::to_value(f0))]),"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(f{i}),"))
                    .collect();
                format!(
                    "Self::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from({vname:?}),\
                         ::serde::Value::Array(::std::vec![{}]))]),",
                    binds.join(","),
                    items.join("")
                )
            }
            Fields::Named(fnames) => {
                let obj = named_fields_to_object(|n| n.to_string(), fnames);
                format!(
                    "Self::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from({vname:?}), {obj})]),",
                    fnames.join(",")
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\
             fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\
         }}",
        arms.join("")
    )
}

fn gen_enum_de(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(vname, _)| format!("{vname:?} => ::std::result::Result::Ok(Self::{vname}),"))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|(vname, fields)| match fields {
            Fields::Unit => None,
            Fields::Tuple(1) => Some(format!(
                "{vname:?} => ::std::result::Result::Ok(Self::{vname}(\
                     ::serde::Deserialize::from_value(inner)?)),"
            )),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                    .collect();
                Some(format!(
                    "{vname:?} => {{\
                         let items = inner.as_array().ok_or_else(|| ::serde::Error::msg(\
                             \"expected array for {name}::{vname}\"))?;\
                         if items.len() != {n} {{\
                             return ::std::result::Result::Err(::serde::Error::msg(\
                                 \"wrong arity for {name}::{vname}\"));\
                         }}\
                         ::std::result::Result::Ok(Self::{vname}({}))\
                     }},",
                    items.join("")
                ))
            }
            Fields::Named(fnames) => {
                let init = named_fields_from_object(&format!("Self::{vname}"), "vfields", fnames);
                Some(format!(
                    "{vname:?} => {{\
                         let vfields = inner.as_object().ok_or_else(|| ::serde::Error::msg(\
                             \"expected object for {name}::{vname}\"))?;\
                         ::std::result::Result::Ok({init})\
                     }},"
                ))
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\
                 match v {{\
                     ::serde::Value::Str(s) => match s.as_str() {{\
                         {units}\
                         other => ::std::result::Result::Err(::serde::Error::msg(\
                             ::std::format!(\"unknown {name} variant {{other}}\"))),\
                     }},\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\
                         let (tag, inner) = &fields[0];\
                         let _ = inner;\
                         match tag.as_str() {{\
                             {datas}\
                             other => ::std::result::Result::Err(::serde::Error::msg(\
                                 ::std::format!(\"unknown {name} variant {{other}}\"))),\
                         }}\
                     }},\
                     other => ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"cannot deserialize {name} from {{other:?}}\"))),\
                 }}\
             }}\
         }}",
        units = unit_arms.join(""),
        datas = data_arms.join("")
    )
}
