//! Offline shim for `criterion` (see `shims/README.md`).
//!
//! A minimal-but-real benchmark harness with criterion's API shape:
//! it warms up, times the routine over a measurement budget, and
//! prints mean time per iteration. No statistical analysis, HTML
//! reports, or baseline comparison — numbers are for relative,
//! same-machine comparison (exactly how this repo's benches are used).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_MEASUREMENT: Duration = Duration::from_millis(300);
/// Keep `cargo bench` bounded even when benches ask for long windows.
const MAX_MEASUREMENT: Duration = Duration::from_secs(2);

#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Build from CLI args: the first non-flag argument is a substring
    /// filter on benchmark names (cargo bench passes harness flags like
    /// `--bench`, which are ignored).
    pub fn from_args() -> Criterion {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(name) {
            run_one(name, DEFAULT_MEASUREMENT, &mut f);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            measurement: DEFAULT_MEASUREMENT,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sample count is meaningless without criterion's statistics;
    /// accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d.min(MAX_MEASUREMENT);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        if self.criterion.matches(&full) {
            run_one(&full, self.measurement, &mut f);
        }
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        if self.criterion.matches(&full) {
            run_one(&full, self.measurement, &mut |b| f(b, input));
        }
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    pub fn new(name: impl Display, p: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{p}"))
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

#[derive(Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: a few calls so lazy setup and caches settle.
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    /// Time `routine` only; `setup` runs outside the clock each iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        let deadline = Instant::now() + self.budget;
        let mut iters = 0u64;
        let mut timed = Duration::ZERO;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = timed;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, budget: Duration, f: &mut F) {
    let mut b = Bencher {
        budget,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<50} (no iterations recorded)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let (scaled, unit) = if per_iter >= 1e9 {
        (per_iter / 1e9, "s")
    } else if per_iter >= 1e6 {
        (per_iter / 1e6, "ms")
    } else if per_iter >= 1e3 {
        (per_iter / 1e3, "µs")
    } else {
        (per_iter, "ns")
    };
    println!(
        "{name:<50} time: {scaled:>10.3} {unit}/iter   ({} iters)",
        b.iters
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher {
            budget: Duration::from_millis(10),
            iters: 0,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert!(b.iters > 0);
        assert!(count >= b.iters);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher {
            budget: Duration::from_millis(10),
            iters: 0,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
    }
}
