//! Offline shim for the `serde` crate (see `shims/README.md`).
//!
//! Real serde abstracts over serializers; this shim serializes through a
//! self-describing [`Value`] tree instead, which is all `serde_json`
//! (the only serializer in this workspace) needs. The derive macro
//! re-exported here generates `to_value` / `from_value` implementations
//! mirroring serde's externally-tagged data model, so journal lines and
//! telemetry exports look like the real thing.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A self-describing serialized value (the JSON data model, plus a
/// distinct signed/unsigned/float split so integers round-trip exactly).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (field order = declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Field lookup in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        "expected integer for {}, got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        "expected integer for {}, got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            // serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::msg("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::msg(format!("expected array, got {v:?}")))?;
        if items.len() != N {
            return Err(Error::msg(format!(
                "expected {N} elements, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array()
                    .ok_or_else(|| Error::msg(format!("expected tuple array, got {v:?}")))?;
                let expected = [$(stringify!($n)),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected {expected}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys must serialize to strings (the JSON constraint).
fn key_to_string<K: Serialize>(k: &K) -> String {
    match k.to_value() {
        Value::Str(s) => s,
        Value::Int(n) => n.to_string(),
        Value::UInt(n) => n.to_string(),
        other => panic!("map key must serialize to a string or integer, got {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v
            .as_object()
            .ok_or_else(|| Error::msg(format!("expected object, got {v:?}")))?;
        let mut out = BTreeMap::new();
        for (k, val) in fields {
            // Keys arrive as strings; re-parse through the string Value.
            let key = K::from_value(&Value::Str(k.clone())).or_else(|_| {
                // Integer-keyed maps: try numeric re-parse.
                k.parse::<i64>()
                    .map_err(|_| Error::msg(format!("bad map key {k:?}")))
                    .and_then(|n| K::from_value(&Value::Int(n)))
            })?;
            out.insert(key, V::from_value(val)?);
        }
        Ok(out)
    }
}

/// Find a field in an object slice (used by derive-generated code).
pub fn find<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_vec_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(3), None, Some(7)];
        let val = v.to_value();
        assert_eq!(Vec::<Option<u32>>::from_value(&val).unwrap(), v);
    }

    #[test]
    fn map_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2);
        let val = m.to_value();
        assert_eq!(BTreeMap::<String, u64>::from_value(&val).unwrap(), m);
    }

    #[test]
    fn integer_width_checks() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert_eq!(u8::from_value(&Value::UInt(255)).unwrap(), 255);
        assert_eq!(i32::from_value(&Value::Int(-5)).unwrap(), -5);
    }
}
