//! Offline shim for `proptest` (see `shims/README.md`).
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` block macro, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, `any::<T>()`, integer/float range strategies,
//! tuple strategies, `collection::vec`, simple `[class]{lo,hi}` string
//! patterns, and `Strategy::prop_map`. Cases are generated from a
//! deterministic per-test seed, so failures reproduce run-to-run.
//! Deviation from real proptest: no shrinking — the failing input is
//! printed in full instead of being minimized.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Display;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The generator handed to strategies.
pub type TestRng = StdRng;

#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Display) -> TestCaseError {
        TestCaseError::Fail(msg.to_string())
    }

    pub fn reject(msg: impl Display) -> TestCaseError {
        TestCaseError::Reject(msg.to_string())
    }
}

impl Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| {
            self.generate(rng)
        }))
    }
}

pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

pub struct BoxedStrategy<V>(std::rc::Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(std::rc::Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union(alternatives)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.random_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Whole-domain strategies (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random::<f64>() < 0.5
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, wide-range doubles; good enough without NaN cases.
        (rng.random::<f64>() - 0.5) * 2e12
    }
}

pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

// Ranges as strategies.
macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------
// String pattern strategy: `[class]{lo,hi}`
// ---------------------------------------------------------------------

/// String literals are strategies over a tiny regex subset: one
/// character class with `{lo,hi}` repetition, e.g. `"[a-z]{0,6}"` or
/// `"[ -~]{0,80}"`. Anything else is a hard error at generation time.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (ranges, lo, hi) = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported string pattern {self:?}: {e}"));
        let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
        let len = rng.random_range(lo..=hi);
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            let mut idx = rng.random_range(0..total);
            for (a, b) in &ranges {
                let span = *b as u32 - *a as u32 + 1;
                if idx < span {
                    out.push(char::from_u32(*a as u32 + idx).unwrap());
                    break;
                }
                idx -= span;
            }
        }
        out
    }
}

type CharRanges = Vec<(char, char)>;

fn parse_pattern(pat: &str) -> Result<(CharRanges, usize, usize), String> {
    let rest = pat.strip_prefix('[').ok_or("expected '['")?;
    let close = rest.find(']').ok_or("expected ']'")?;
    let class: Vec<char> = rest[..close].chars().collect();
    if class.is_empty() {
        return Err("empty character class".into());
    }
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if class.get(i + 1) == Some(&'-') && i + 2 < class.len() {
            let (a, b) = (class[i], class[i + 2]);
            if a > b {
                return Err(format!("inverted range {a}-{b}"));
            }
            ranges.push((a, b));
            i += 3;
        } else {
            ranges.push((class[i], class[i]));
            i += 1;
        }
    }
    let counts = rest[close + 1..]
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("expected {lo,hi} repetition")?;
    let (lo, hi) = counts.split_once(',').ok_or("expected {lo,hi}")?;
    let lo: usize = lo.trim().parse().map_err(|_| "bad lower bound")?;
    let hi: usize = hi.trim().parse().map_err(|_| "bad upper bound")?;
    if lo > hi {
        return Err("lo > hi".into());
    }
    Ok((ranges, lo, hi))
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

pub mod collection {
    use super::{Rng, Strategy, TestRng};

    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

fn seed_for(name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

pub fn run_prop_test<S, F>(name: &str, config: &ProptestConfig, strategy: S, test: F)
where
    S: Strategy,
    S::Value: std::fmt::Debug,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let base = seed_for(name);
    let mut rejects = 0u32;
    for case in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let value = strategy.generate(&mut rng);
        let repr = format!("{value:?}");
        let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(TestCaseError::Reject(_))) => {
                rejects += 1;
                if rejects > config.cases * 4 {
                    panic!("proptest {name}: too many rejected cases");
                }
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "proptest {name} failed at case {case}/{}:\n  input: {repr}\n  {msg}\n\
                     (shim runner: no shrinking; input shown verbatim)",
                    config.cases
                );
            }
            Err(payload) => {
                eprintln!(
                    "proptest {name} panicked at case {case}/{}:\n  input: {repr}",
                    config.cases
                );
                resume_unwind(payload);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_prop_test(
                    stringify!($name),
                    &config,
                    ($($strat,)+),
                    |($($arg,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` == `{:?}`",
                        left, right
                    )));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        use rand::SeedableRng;
        let s = crate::collection::vec(0u32..100, 5..10);
        let mut a = crate::TestRng::seed_from_u64(7);
        let mut b = crate::TestRng::seed_from_u64(7);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn string_pattern_respects_class_and_len() {
        let strat = "[a-z]{0,6}";
        let mut rng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(3);
        for _ in 0..200 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let strat = "[ -~]{0,20}";
        for _ in 0..200 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(xs in collection::vec(0i64..50, 1..20), flip in any::<bool>()) {
            let sum: i64 = xs.iter().sum();
            prop_assert!(sum >= 0);
            if flip {
                prop_assert_eq!(xs.len(), xs.len());
            }
        }
    }
}
